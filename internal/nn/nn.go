// Package nn implements a real (tiny) Llama-style decoder with manual
// forward and backward passes at slice granularity — the numeric substrate
// behind the executable pipeline runtime. It mirrors the structure the
// paper's scheduler exploits:
//
//   - forward processes a sample slice by slice, each slice appending its
//     keys/values to a per-micro-batch cache that later slices attend to
//     (Fig 3's dependency);
//   - backward runs slices in reverse, accumulating dK/dV contributions
//     from later slices into earlier ones;
//   - activation-gradient and weight-gradient computation are separable:
//     BackwardSlice produces dX and *stashes* the seven per-layer GEMMs
//     (Wq, Wk, Wv, Wo, gate, up, down) as WeightTasks that can run at any
//     later time, in any order — exactly the §5 decomposition.
//
// Every slice-level entry point takes a *tensor.Scratch arena (nil for
// plain allocation). With an arena, the passes follow a strict ownership
// protocol: ForwardSlice and Head.Forward take ownership of their input x,
// BackwardSlice and Head.Backward take ownership of their incoming
// gradient, and buffers retained by deferred WeightTasks are returned to
// the arena by Release once the whole task family has run. Steady-state
// training then allocates nothing per microbatch (see Trainer).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mepipe/internal/tensor"
)

// Config sizes the decoder.
type Config struct {
	Hidden, Heads, FFN, Vocab, Layers, SeqLen int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Hidden <= 0 || c.Heads <= 0 || c.FFN <= 0 || c.Vocab <= 0 || c.Layers <= 0 || c.SeqLen <= 0:
		return fmt.Errorf("nn: non-positive field in %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("nn: hidden %d not divisible by %d heads", c.Hidden, c.Heads)
	}
	return nil
}

// Linear is a bias-free projection with separable weight gradients.
type Linear struct {
	W, DW *tensor.Matrix // [in×out]
}

func newLinear(rng *rand.Rand, in, out int) Linear {
	l := Linear{W: tensor.New(in, out), DW: tensor.New(in, out)}
	l.W.RandInit(rng, float32(1/math.Sqrt(float64(in))))
	return l
}

// Forward computes y = x·W.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, l.W.Cols)
	tensor.MatMul(y, x, l.W)
	return y
}

// BackwardAct accumulates dx += dy·Wᵀ.
func (l *Linear) BackwardAct(dx, dy *tensor.Matrix) {
	tensor.MatMulBT(dx, dy, l.W)
}

// BackwardWeight accumulates DW += xᵀ·dy — the §5-deferrable GEMM.
func (l *Linear) BackwardWeight(x, dy *tensor.Matrix) {
	tensor.MatMulAT(l.DW, x, dy)
}

// WeightTask is one deferred weight-gradient GEMM. The freeX/freeDY flags
// mark the task that is the last user of each retained buffer; Release
// consults them once the family has run.
type WeightTask struct {
	lin           *Linear
	x, dy         *tensor.Matrix
	freeX, freeDY bool
}

// Run executes the deferred GEMM.
func (t WeightTask) Run() { t.lin.BackwardWeight(t.x, t.dy) }

// RunCounted is Run with the GEMM's FLOPs counted against sc (nil-safe).
func (t WeightTask) RunCounted(sc *tensor.Scratch) {
	sc.MatMulAT(t.lin.DW, t.x, t.dy)
}

// Release returns the buffers retained by a family of weight tasks to the
// arena. Call it exactly once per family, only after every task in the
// family has Run — tasks may share buffers (Wq/Wk/Wv share the normed
// input), so releasing earlier would corrupt still-pending GEMMs. With a
// nil scratch it is a no-op (the garbage collector takes over).
func Release(sc *tensor.Scratch, tasks []WeightTask) {
	if sc == nil {
		return
	}
	for i := range tasks {
		t := &tasks[i]
		if t.freeX {
			sc.Put(t.x)
		}
		if t.freeDY {
			sc.Put(t.dy)
		}
		t.x, t.dy = nil, nil
	}
}

// Layer is one transformer block.
type Layer struct {
	cfg Config

	AttnNorm, MLPNorm   []float32
	DAttnNorm, DMLPNorm []float32

	Wq, Wk, Wv, Wo Linear
	Wg, Wu, Wd     Linear
}

func newLayer(rng *rand.Rand, cfg Config) *Layer {
	h, f := cfg.Hidden, cfg.FFN
	l := &Layer{
		cfg:       cfg,
		AttnNorm:  ones(h),
		MLPNorm:   ones(h),
		DAttnNorm: make([]float32, h),
		DMLPNorm:  make([]float32, h),
		Wq:        newLinear(rng, h, h),
		Wk:        newLinear(rng, h, h),
		Wv:        newLinear(rng, h, h),
		Wo:        newLinear(rng, h, h),
		Wg:        newLinear(rng, h, f),
		Wu:        newLinear(rng, h, f),
		Wd:        newLinear(rng, f, h),
	}
	return l
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// sliceSave holds everything a slice's backward needs.
type sliceSave struct {
	start      int // absolute position of the slice's first token
	xIn        *tensor.Matrix
	inv1, inv2 []float32
	xn1        *tensor.Matrix
	q          *tensor.Matrix
	probs      []*tensor.Matrix // per head, [t × cachedLen]
	ctx        *tensor.Matrix   // pre-Wo attention output
	xMid       *tensor.Matrix
	xn2        *tensor.Matrix
	g, u, act  *tensor.Matrix
}

// LayerState is the per-micro-batch runtime state of one layer: the KV
// cache grown in place by forward slices (capacity preallocated for the
// full sequence) and the dK/dV accumulators filled by backward slices in
// reverse order. States are reusable: Reset rewinds one for the next
// sample without giving up its buffers.
type LayerState struct {
	K, V   *tensor.Matrix // [cachedTokens × hidden]
	dK, dV *tensor.Matrix
	saves  map[int]*sliceSave // by slice start position
	pool   []*sliceSave       // recycled saves
}

// NewLayerState returns an empty state for one micro-batch.
func NewLayerState(cfg Config) *LayerState {
	return &LayerState{
		K:     tensor.NewWithRowCap(0, cfg.Hidden, cfg.SeqLen),
		V:     tensor.NewWithRowCap(0, cfg.Hidden, cfg.SeqLen),
		saves: map[int]*sliceSave{},
	}
}

// Reset rewinds the state for a fresh sample, keeping every buffer.
func (st *LayerState) Reset() {
	st.K.Rows, st.K.Data = 0, st.K.Data[:0]
	st.V.Rows, st.V.Data = 0, st.V.Data[:0]
	if st.dK != nil {
		st.dK.Rows, st.dK.Data = 0, st.dK.Data[:0]
		st.dV.Rows, st.dV.Data = 0, st.dV.Data[:0]
	}
	clear(st.saves)
}

// getSave recycles a sliceSave from the pool.
//
//mepipe:coldalloc pool miss builds one sliceSave per live slice; putSave recycles it, so steady state never misses
func (st *LayerState) getSave() *sliceSave {
	if n := len(st.pool); n > 0 {
		sv := st.pool[n-1]
		st.pool[n-1] = nil
		st.pool = st.pool[:n-1]
		return sv
	}
	return &sliceSave{}
}

func (st *LayerState) putSave(sv *sliceSave) {
	*sv = sliceSave{probs: sv.probs[:0]}
	st.pool = append(st.pool, sv)
}

// ensureGrads sizes the dK/dV accumulators to the current cache (zeroed)
// the first time a micro-batch's backward touches them.
//
//mepipe:coldalloc first-touch accumulator sizing; later steps reuse capacity (growZero only reallocates on cache growth)
func (st *LayerState) ensureGrads() {
	if st.dK == nil {
		st.dK = tensor.New(st.K.Rows, st.K.Cols)
		st.dV = tensor.New(st.V.Rows, st.V.Cols)
		return
	}
	if st.dK.Rows != st.K.Rows {
		growZero(st.dK, st.K.Rows)
		growZero(st.dV, st.V.Rows)
	}
}

// growZero resizes m to rows (reusing capacity when possible) and zeroes it.
func growZero(m *tensor.Matrix, rows int) {
	need := rows * m.Cols
	if cap(m.Data) < need {
		m.Data = make([]float32, need)
	} else {
		m.Data = m.Data[:cap(m.Data)][:need]
	}
	m.Rows = rows
	clear(m.Data)
}

// ForwardSlice runs one slice of tokens (x: [t×hidden], first token at
// absolute position start) through the layer, growing the KV cache. The
// layer takes ownership of x (it is retained for the backward pass and
// eventually returned to the arena). With lean set, only the slice input is
// retained — the recomputation technique (§2): the backward pass rebuilds
// the intermediates from xIn and the KV cache at the cost of replaying the
// forward math.
func (l *Layer) ForwardSlice(sc *tensor.Scratch, st *LayerState, x *tensor.Matrix, start int) *tensor.Matrix {
	return l.forwardSlice(sc, st, x, start, false)
}

// ForwardSliceLean is ForwardSlice under activation recomputation.
func (l *Layer) ForwardSliceLean(sc *tensor.Scratch, st *LayerState, x *tensor.Matrix, start int) *tensor.Matrix {
	return l.forwardSlice(sc, st, x, start, true)
}

func (l *Layer) forwardSlice(sc *tensor.Scratch, st *LayerState, x *tensor.Matrix, start int, lean bool) *tensor.Matrix {
	if st.K.Rows != start {
		panic(fmt.Sprintf("nn: slice at %d but cache holds %d tokens (slices must arrive in order)", start, st.K.Rows))
	}
	t := x.Rows
	sv := st.getSave()
	sv.start, sv.xIn = start, x
	// Project and append this slice's keys/values; later slices need them
	// regardless of recomputation.
	xn1 := sc.GetRaw(t, l.cfg.Hidden)
	inv1 := tensor.RMSNorm(xn1, x, l.AttnNorm, sc.GetVec(t))
	proj := sc.Get(t, l.cfg.Hidden)
	sc.MatMul(proj, xn1, l.Wk.W)
	st.K.AppendRows(proj)
	proj.Zero()
	sc.MatMul(proj, xn1, l.Wv.W)
	st.V.AppendRows(proj)
	sc.Put(proj)
	y := l.computeSlice(sc, st, sv, xn1, inv1)
	if lean {
		// Drop everything but the input; BackwardSlice rebuilds it.
		l.releaseCompute(sc, sv)
	}
	st.saves[start] = sv
	return y
}

// releaseCompute returns every intermediate of a save except xIn to the
// arena and clears the fields (so sv.q == nil marks a lean save).
func (l *Layer) releaseCompute(sc *tensor.Scratch, sv *sliceSave) {
	sc.Put(sv.xn1)
	sc.Put(sv.q)
	sc.Put(sv.ctx)
	sc.Put(sv.xMid)
	sc.Put(sv.xn2)
	sc.Put(sv.g)
	sc.Put(sv.u)
	sc.Put(sv.act)
	sc.PutVec(sv.inv1)
	sc.PutVec(sv.inv2)
	for i, p := range sv.probs {
		sc.Put(p)
		sv.probs[i] = nil
	}
	*sv = sliceSave{start: sv.start, xIn: sv.xIn, probs: sv.probs[:0]}
}

// computeSlice runs attention and the MLP for the slice described by sv
// (whose xIn is set and whose K/V rows are already in the cache up to
// start+t), filling the save and returning the layer output. The layer
// takes ownership of xn1 and inv1 (stored in the save).
func (l *Layer) computeSlice(sc *tensor.Scratch, st *LayerState, sv *sliceSave, xn1 *tensor.Matrix, inv1 []float32) *tensor.Matrix {
	h := l.cfg.Hidden
	nh := l.cfg.Heads
	hd := h / nh
	t := sv.xIn.Rows
	cached := sv.start + t

	sv.xn1, sv.inv1 = xn1, inv1
	sv.q = sc.Get(t, h)
	sc.MatMul(sv.q, sv.xn1, l.Wq.W)

	// Per-head causal attention against the cache as of this slice.
	sv.ctx = sc.GetRaw(t, h)
	sv.probs = sv.probs[:0]
	scale := float32(1 / math.Sqrt(float64(hd)))
	qh := sc.GetRaw(t, hd)
	kh := sc.GetRaw(cached, hd)
	vh := sc.GetRaw(cached, hd)
	ctxh := sc.Get(t, hd)
	for hI := 0; hI < nh; hI++ {
		gatherHead(qh, sv.q.Data, t, h, hI, hd)
		gatherHead(kh, st.K.Data, cached, h, hI, hd)
		gatherHead(vh, st.V.Data, cached, h, hI, hd)
		scores := sc.Get(t, cached)
		sc.MatMulBT(scores, qh, kh)
		scores.Scale(scale)
		tensor.SoftmaxRowsCausal(scores, sv.start)
		sv.probs = append(sv.probs, scores)
		ctxh.Zero()
		sc.MatMul(ctxh, scores, vh)
		writeHead(sv.ctx, ctxh, hI, hd)
	}
	sc.Put(qh)
	sc.Put(kh)
	sc.Put(vh)
	// ctxh was zeroed before each use; its last contents are dead.
	sc.Put(ctxh)
	attnOut := sc.Get(t, h)
	sc.MatMul(attnOut, sv.ctx, l.Wo.W)

	sv.xMid = sc.GetRaw(t, h)
	sv.xMid.CopyFrom(sv.xIn)
	sv.xMid.Add(attnOut)
	sc.Put(attnOut)

	sv.xn2 = sc.GetRaw(t, h)
	sv.inv2 = tensor.RMSNorm(sv.xn2, sv.xMid, l.MLPNorm, sc.GetVec(t))
	sv.g = sc.Get(t, l.cfg.FFN)
	sc.MatMul(sv.g, sv.xn2, l.Wg.W)
	sv.u = sc.Get(t, l.cfg.FFN)
	sc.MatMul(sv.u, sv.xn2, l.Wu.W)
	sv.act = sc.GetRaw(t, l.cfg.FFN)
	tensor.SiLU(sv.act, sv.g)
	tensor.Mul(sv.act, sv.act, sv.u)
	mlpOut := sc.Get(t, h)
	sc.MatMul(mlpOut, sv.act, l.Wd.W)

	y := sc.GetRaw(t, h)
	y.CopyFrom(sv.xMid)
	y.Add(mlpOut)
	sc.Put(mlpOut)
	return y
}

// gatherHead copies head hI's columns of the first dst.Rows rows of a
// row-major [·×stride] buffer into dst (fully overwriting it).
func gatherHead(dst *tensor.Matrix, data []float32, rows, stride, hI, hd int) {
	for r := 0; r < rows; r++ {
		copy(dst.Row(r), data[r*stride+hI*hd:r*stride+(hI+1)*hd])
	}
}

// writeHead copies a [rows×hd] block into head hI's columns (overwriting).
func writeHead(dst, src *tensor.Matrix, hI, hd int) {
	for r := 0; r < src.Rows; r++ {
		copy(dst.Row(r)[hI*hd:(hI+1)*hd], src.Row(r))
	}
}

// addHead accumulates a [rows×hd] block into head hI's columns of dst,
// starting at dst row rowOff.
func addHead(dst, src *tensor.Matrix, rowOff, hI, hd int) {
	for r := 0; r < src.Rows; r++ {
		drow := dst.Row(rowOff + r)[hI*hd : (hI+1)*hd]
		srow := src.Row(r)
		for c := range srow {
			drow[c] += srow[c]
		}
	}
}

// copyRows copies rows [off, off+dst.Rows) of src into dst (overwriting).
func copyRows(dst, src *tensor.Matrix, off int) {
	copy(dst.Data, src.Data[off*src.Cols:(off+dst.Rows)*src.Cols])
}

// BackwardSlice consumes dY for the slice that starts at `start`, returning
// dX and appending the layer's seven deferred weight-gradient GEMMs to
// tasks. The layer takes ownership of dy (it is retained by the Wd task
// until Release). Slices MUST be processed in reverse order: the dK/dV
// contributions of later slices land in the state's accumulators before
// earlier slices read their own rows.
func (l *Layer) BackwardSlice(sc *tensor.Scratch, st *LayerState, start int, dy *tensor.Matrix, tasks []WeightTask) (*tensor.Matrix, []WeightTask) {
	sv, ok := st.saves[start]
	if !ok {
		panic(fmt.Sprintf("nn: backward for unseen slice at %d", start))
	}
	delete(st.saves, start)
	if sv.q == nil {
		// Lean forward: replay the forward math to rebuild the
		// intermediates (identical inputs, identical results).
		xn1 := sc.GetRaw(sv.xIn.Rows, l.cfg.Hidden)
		inv1 := tensor.RMSNorm(xn1, sv.xIn, l.AttnNorm, sc.GetVec(sv.xIn.Rows))
		sc.Put(l.computeSlice(sc, st, sv, xn1, inv1))
	}
	h, nh := l.cfg.Hidden, l.cfg.Heads
	hd := h / nh
	t := dy.Rows
	st.ensureGrads()

	// MLP backward. y = xMid + Wd(silu(Wg xn2) ⊙ Wu xn2).
	dXmid := sc.GetRaw(t, h)
	dXmid.CopyFrom(dy)
	dAct := sc.Get(t, l.cfg.FFN)
	sc.MatMulBT(dAct, dy, l.Wd.W)
	tasks = append(tasks, WeightTask{lin: &l.Wd, x: sv.act, dy: dy, freeX: true, freeDY: true})
	// act = silu(g) ⊙ u
	dG := sc.Get(t, l.cfg.FFN)
	siluG := sc.GetRaw(t, l.cfg.FFN)
	tensor.SiLU(siluG, sv.g)
	dU := sc.Get(t, l.cfg.FFN)
	tensor.MulAdd(dU, dAct, siluG)
	dActSilu := sc.GetRaw(t, l.cfg.FFN)
	tensor.Mul(dActSilu, dAct, sv.u)
	tensor.SiLUBackward(dG, dActSilu, sv.g)
	sc.Put(siluG)
	sc.Put(dActSilu)
	sc.Put(dAct)
	sc.Put(sv.g)
	sc.Put(sv.u)
	dXn2 := sc.Get(t, h)
	sc.MatMulBT(dXn2, dG, l.Wg.W)
	sc.MatMulBT(dXn2, dU, l.Wu.W)
	tasks = append(tasks, WeightTask{lin: &l.Wg, x: sv.xn2, dy: dG, freeDY: true})
	tasks = append(tasks, WeightTask{lin: &l.Wu, x: sv.xn2, dy: dU, freeX: true, freeDY: true})
	tensor.RMSNormBackward(dXmid, l.DMLPNorm, dXn2, sv.xMid, l.MLPNorm, sv.inv2)
	sc.Put(dXn2)
	sc.Put(sv.xMid)
	sc.PutVec(sv.inv2)

	// Attention backward. xMid = xIn + Wo·ctx.
	dCtx := sc.Get(t, h)
	sc.MatMulBT(dCtx, dXmid, l.Wo.W)
	tasks = append(tasks, WeightTask{lin: &l.Wo, x: sv.ctx, dy: dXmid, freeX: true, freeDY: true})
	dQ := sc.GetRaw(t, h)
	// The slice attended to the cache as it stood at its forward pass —
	// exactly `cached` tokens — so the K/V views must be truncated even
	// though later slices have grown the cache since.
	cached := sv.probs[0].Cols
	scale := float32(1 / math.Sqrt(float64(hd)))
	dCtxh := sc.GetRaw(t, hd)
	kh := sc.GetRaw(cached, hd)
	vh := sc.GetRaw(cached, hd)
	qh := sc.GetRaw(t, hd)
	dVh := sc.Get(cached, hd)
	dKh := sc.Get(cached, hd)
	dQh := sc.Get(t, hd)
	for hI := 0; hI < nh; hI++ {
		gatherHead(dCtxh, dCtx.Data, t, h, hI, hd)
		probs := sv.probs[hI]
		gatherHead(kh, st.K.Data, cached, h, hI, hd)
		gatherHead(vh, st.V.Data, cached, h, hI, hd)
		// dV_cache += probsᵀ · dCtxh
		dVh.Zero()
		sc.MatMulAT(dVh, probs, dCtxh)
		addHead(st.dV, dVh, 0, hI, hd)
		// dProbs = dCtxh · Vᵀ, then softmax backward in place.
		dProbs := sc.Get(t, cached)
		sc.MatMulBT(dProbs, dCtxh, vh)
		tensor.SoftmaxBackwardCausal(dProbs, probs, sv.start)
		// dQ_h += dScores · K · scale; dK_cache += dScoresᵀ · Q · scale.
		dQh.Zero()
		sc.MatMul(dQh, dProbs, kh)
		dQh.Scale(scale)
		writeHead(dQ, dQh, hI, hd)
		gatherHead(qh, sv.q.Data, t, h, hI, hd)
		dKh.Zero()
		sc.MatMulAT(dKh, dProbs, qh)
		dKh.Scale(scale)
		addHead(st.dK, dKh, 0, hI, hd)
		sc.Put(dProbs)
		if sc != nil {
			// Recycling only: a nil arena means checkpoint snapshots may
			// share this save, and replay needs the probs intact.
			sc.Put(probs)
			sv.probs[hI] = nil
		}
	}
	sc.Put(dCtxh)
	sc.Put(kh)
	sc.Put(vh)
	sc.Put(qh)
	sc.Put(dVh)
	sc.Put(dKh)
	sc.Put(dQh)
	sc.Put(dCtx)
	sc.Put(sv.q)

	// The slice's own K/V rows now hold every contribution (this slice's
	// plus all later slices'); project them back.
	dKslice := sc.GetRaw(t, h)
	copyRows(dKslice, st.dK, sv.start)
	dVslice := sc.GetRaw(t, h)
	copyRows(dVslice, st.dV, sv.start)
	dXn1 := sc.Get(t, h)
	sc.MatMulBT(dXn1, dQ, l.Wq.W)
	sc.MatMulBT(dXn1, dKslice, l.Wk.W)
	sc.MatMulBT(dXn1, dVslice, l.Wv.W)
	tasks = append(tasks, WeightTask{lin: &l.Wq, x: sv.xn1, dy: dQ, freeDY: true})
	tasks = append(tasks, WeightTask{lin: &l.Wk, x: sv.xn1, dy: dKslice, freeDY: true})
	tasks = append(tasks, WeightTask{lin: &l.Wv, x: sv.xn1, dy: dVslice, freeX: true, freeDY: true})

	dX := sc.GetRaw(t, h)
	dX.CopyFrom(dXmid)
	tensor.RMSNormBackward(dX, l.DAttnNorm, dXn1, sv.xIn, l.AttnNorm, sv.inv1)
	sc.Put(dXn1)
	sc.Put(sv.xIn)
	sc.PutVec(sv.inv1)
	if sc != nil {
		// Recycling zeroes *sv, so skip it in scratch-free mode: the
		// resilient runtime's snapshots share save pointers and must be
		// able to replay from them.
		st.putSave(sv)
	}
	return dX, tasks
}

// WeightGradGEMMs is the per-layer fine-grained decomposition width
// (matching model.WeightGradGEMMsPerLayer).
const WeightGradGEMMs = 7
