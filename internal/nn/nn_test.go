package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mepipe/internal/tensor"
)

func tinyCfg() Config {
	return Config{Hidden: 8, Heads: 2, FFN: 16, Vocab: 11, Layers: 2, SeqLen: 8}
}

func randBatch(rng *rand.Rand, cfg Config, n int) [][]int {
	batch := make([][]int, n)
	for i := range batch {
		s := make([]int, cfg.SeqLen+1)
		for j := range s {
			s[j] = rng.Intn(cfg.Vocab)
		}
		batch[i] = s
	}
	return batch
}

// TestSliceDecompositionExactLoss: processing a sample in s slices with the
// KV cache must compute the same loss as processing it whole — the
// correctness core of sequence pipeline parallelism (Fig 3).
func TestSliceDecompositionExactLoss(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(11))
	batch := randBatch(rng, cfg, 2)
	var ref float64
	for _, slices := range []int{1, 2, 4, 8} {
		m, err := NewModel(cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := m.TrainSequential(batch, slices)
		if err != nil {
			t.Fatal(err)
		}
		if slices == 1 {
			ref = loss
			continue
		}
		if math.Abs(loss-ref) > 1e-4 {
			t.Errorf("slices=%d: loss %.8f differs from unsliced %.8f", slices, loss, ref)
		}
	}
}

// TestSliceDecompositionGrads: gradients under slicing match the unsliced
// reference within float32 reordering noise.
func TestSliceDecompositionGrads(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(12))
	batch := randBatch(rng, cfg, 1)

	ref, err := NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainSequential(batch, 1); err != nil {
		t.Fatal(err)
	}
	for _, slices := range []int{2, 4} {
		m, _ := NewModel(cfg, 7)
		if _, err := m.TrainSequential(batch, slices); err != nil {
			t.Fatal(err)
		}
		refG, gotG := ref.Grads(), m.Grads()
		for name, rg := range refG {
			if d := tensor.MaxAbsDiff(rg, gotG[name]); d > 1e-4 {
				t.Errorf("slices=%d: grad %s differs by %g", slices, name, d)
			}
		}
	}
}

// TestFullModelGradCheck validates the entire manual backward against
// finite differences on a sample of weights from every parameter tensor.
func TestFullModelGradCheck(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(13))
	batch := randBatch(rng, cfg, 1)
	m, err := NewModel(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		m.ZeroGrads()
		l, err := m.TrainSequential(batch, 2)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	loss() // populate analytic grads
	type probe struct {
		name string
		w    *tensor.Matrix
		g    *tensor.Matrix
	}
	l0 := m.Layers[0]
	l1 := m.Layers[1]
	probes := []probe{
		{"embed", m.Embed.Table, m.Embed.DTable},
		{"l0.Wq", l0.Wq.W, l0.Wq.DW},
		{"l0.Wk", l0.Wk.W, l0.Wk.DW},
		{"l0.Wv", l0.Wv.W, l0.Wv.DW},
		{"l0.Wo", l0.Wo.W, l0.Wo.DW},
		{"l1.Wg", l1.Wg.W, l1.Wg.DW},
		{"l1.Wu", l1.Wu.W, l1.Wu.DW},
		{"l1.Wd", l1.Wd.W, l1.Wd.DW},
		{"head.W", m.Head.W.W, m.Head.W.DW},
	}
	const eps = 2e-3
	for _, p := range probes {
		// Sample a handful of coordinates per tensor.
		for trial := 0; trial < 3; trial++ {
			idx := rng.Intn(len(p.w.Data))
			analytic := float64(p.g.Data[idx])
			orig := p.w.Data[idx]
			p.w.Data[idx] = orig + eps
			lp := loss()
			p.w.Data[idx] = orig - eps
			lm := loss()
			p.w.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			// Restore analytic grads for the next probe.
			loss()
			tol := 2e-2*math.Abs(numeric) + 3e-4
			if math.Abs(numeric-analytic) > tol {
				t.Errorf("%s[%d]: numeric %.6f vs analytic %.6f", p.name, idx, numeric, analytic)
			}
		}
	}
	// Norm-scale gradients via one probe each.
	checkVec := func(name string, w, g []float32) {
		idx := rng.Intn(len(w))
		analytic := float64(g[idx])
		orig := w[idx]
		w[idx] = orig + eps
		lp := loss()
		w[idx] = orig - eps
		lm := loss()
		w[idx] = orig
		loss()
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic) > 2e-2*math.Abs(numeric)+3e-4 {
			t.Errorf("%s[%d]: numeric %.6f vs analytic %.6f", name, idx, numeric, analytic)
		}
	}
	checkVec("l0.attnNorm", l0.AttnNorm, l0.DAttnNorm)
	checkVec("l1.mlpNorm", l1.MLPNorm, l1.DMLPNorm)
	checkVec("head.norm", m.Head.Norm, m.Head.DNorm)
}

// TestTrainingReducesLoss: a few SGD steps on a repeated batch must reduce
// the loss — the end-to-end sanity check behind examples/tinytrain.
func TestTrainingReducesLoss(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(14))
	batch := randBatch(rng, cfg, 2)
	m, err := NewModel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0.0, 0.0
	for step := 0; step < 12; step++ {
		m.ZeroGrads()
		loss, err := m.TrainSequential(batch, 2)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		m.SGDStep(0.05)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

// TestDeferredWeightTasks: running the stashed GEMMs out of order and late
// must produce identical weight gradients — §5's freedom.
func TestDeferredWeightTasks(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(15))
	batch := randBatch(rng, cfg, 1)
	inline, _ := NewModel(cfg, 9)
	if _, err := inline.TrainSequential(batch, 2); err != nil {
		t.Fatal(err)
	}

	deferred, _ := NewModel(cfg, 9)
	// Re-run manually with all weight tasks collected and executed in
	// reverse at the very end.
	cfgM := deferred.Cfg
	tTok := cfgM.SeqLen / 2
	sample := batch[0]
	states := make([]*LayerState, len(deferred.Layers))
	for i := range states {
		states[i] = NewLayerState(cfgM)
	}
	headSaves := NewHeadState()
	logits := make([]*tensor.Matrix, 2)
	for s := 0; s < 2; s++ {
		x := deferred.Embed.Forward(nil, sample[s*tTok:s*tTok+tTok])
		for li, l := range deferred.Layers {
			x = l.ForwardSlice(nil, states[li], x, s*tTok)
		}
		logits[s] = deferred.Head.Forward(nil, x, headSaves, s*tTok)
	}
	var all []WeightTask
	for s := 1; s >= 0; s-- {
		dl := tensor.New(tTok, cfgM.Vocab)
		tensor.CrossEntropy(dl, logits[s], sample[s*tTok+1:s*tTok+tTok+1])
		dl.Scale(0.5) // match TrainSequential's 1/(slices·batch) loss scaling
		dx, tasks := deferred.Head.Backward(nil, dl, headSaves, s*tTok, nil)
		for li := len(deferred.Layers) - 1; li >= 0; li-- {
			dx, tasks = deferred.Layers[li].BackwardSlice(nil, states[li], s*tTok, dx, tasks)
		}
		deferred.Embed.Backward(sample[s*tTok:s*tTok+tTok], dx)
		all = append(all, tasks...)
	}
	for i := len(all) - 1; i >= 0; i-- { // reversed execution order
		all[i].Run()
	}
	refG, gotG := inline.Grads(), deferred.Grads()
	for name, rg := range refG {
		if d := tensor.MaxAbsDiff(rg, gotG[name]); d > 1e-4 {
			t.Errorf("deferred W: grad %s differs by %g", name, d)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := tinyCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyCfg()
	bad.Heads = 3
	if err := bad.Validate(); err == nil {
		t.Error("indivisible heads accepted")
	}
	if _, err := NewModel(Config{}, 1); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTrainSequentialErrors(t *testing.T) {
	m, _ := NewModel(tinyCfg(), 1)
	if _, err := m.TrainSequential([][]int{{1, 2}}, 1); err == nil {
		t.Error("short sample accepted")
	}
	if _, err := m.TrainSequential(randBatch(rand.New(rand.NewSource(1)), tinyCfg(), 1), 3); err == nil {
		t.Error("indivisible slice count accepted")
	}
}

// TestRecomputeGradEquivalence: the recomputation technique must change
// nothing about the gradients — forward replay is deterministic.
func TestRecomputeGradEquivalence(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(88))
	batch := randBatch(rng, cfg, 2)
	full, _ := NewModel(cfg, 5)
	lossFull, err := full.TrainSequential(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	lean, _ := NewModel(cfg, 5)
	lean.LeanActivations = true
	lossLean, err := lean.TrainSequential(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lossFull != lossLean {
		t.Errorf("recompute changed the loss: %v vs %v", lossFull, lossLean)
	}
	fg, lg := full.Grads(), lean.Grads()
	for name, g := range fg {
		if d := tensor.MaxAbsDiff(g, lg[name]); d != 0 {
			t.Errorf("recompute changed grad %s by %g", name, d)
		}
	}
}

// TestCheckpointRoundTrip: save → load reproduces the parameters exactly,
// and resumed training matches uninterrupted training step for step.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(61))
	batch := randBatch(rng, cfg, 2)

	// Uninterrupted: 6 steps.
	full, _ := NewModel(cfg, 33)
	for step := 0; step < 6; step++ {
		full.ZeroGrads()
		if _, err := full.TrainSequential(batch, 2); err != nil {
			t.Fatal(err)
		}
		full.SGDStep(0.05)
	}

	// Interrupted: 3 steps, checkpoint, "crash", reload, 3 more steps.
	first, _ := NewModel(cfg, 33)
	for step := 0; step < 3; step++ {
		first.ZeroGrads()
		if _, err := first.TrainSequential(batch, 2); err != nil {
			t.Fatal(err)
		}
		first.SGDStep(0.05)
	}
	var ckpt bytes.Buffer
	if err := first.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	resumed, _ := NewModel(cfg, 999) // different seed: weights overwritten by Load
	if err := resumed.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d := MaxParamDiff(first, resumed); d != 0 {
		t.Fatalf("load did not reproduce parameters (diff %g)", d)
	}
	for step := 0; step < 3; step++ {
		resumed.ZeroGrads()
		if _, err := resumed.TrainSequential(batch, 2); err != nil {
			t.Fatal(err)
		}
		resumed.SGDStep(0.05)
	}
	if d := MaxParamDiff(full, resumed); d != 0 {
		t.Errorf("resumed training diverged from uninterrupted (diff %g)", d)
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	cfg := tinyCfg()
	m, _ := NewModel(cfg, 1)
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	// Wrong config.
	other := cfg
	other.Hidden *= 2
	om, _ := NewModel(other, 1)
	if err := om.Load(bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Error("mismatched config accepted")
	}
	// Truncated.
	if err := m.Load(bytes.NewReader(ckpt.Bytes()[:ckpt.Len()/2])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Trailing garbage.
	garbled := append(append([]byte(nil), ckpt.Bytes()...), 0xff)
	if err := m.Load(bytes.NewReader(garbled)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Wrong magic.
	bad := append([]byte(nil), ckpt.Bytes()...)
	bad[0] ^= 0xff
	if err := m.Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}
