package nn

// Runtime-state cloning for stage-level checkpointing: the resilient
// pipeline runtime snapshots each stage's mutable execution state at slice
// boundaries so an injected (or real) crash can restore-and-replay instead
// of losing the iteration. Only in-place-mutated buffers need deep copies:
// the dK/dV accumulators grow by addHead during backward slices. The KV
// cache matrices are rebound (never written) on append, and slice/head
// saves are immutable once stored — lean saves are rebuilt during replay
// with bit-identical values — so both are shared by reference.

// Clone returns a checkpoint copy of the state. The returned state shares
// the append-only KV cache matrices and the save entries with the
// original; the dK/dV accumulators are deep-copied.
func (st *LayerState) Clone() *LayerState {
	out := &LayerState{K: st.K, V: st.V, saves: make(map[int]*sliceSave, len(st.saves))}
	for k, sv := range st.saves {
		out.saves[k] = sv
	}
	if st.dK != nil {
		out.dK = st.dK.Clone()
		out.dV = st.dV.Clone()
	}
	return out
}

// Clone returns a checkpoint copy of the head state (fresh map, shared
// immutable saves).
func (st *HeadState) Clone() *HeadState {
	out := &HeadState{saves: make(map[int]*headSave, len(st.saves))}
	for k, sv := range st.saves {
		out.saves[k] = sv
	}
	return out
}
