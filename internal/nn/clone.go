package nn

// Runtime-state cloning for stage-level checkpointing: the resilient
// pipeline runtime snapshots each stage's mutable execution state at slice
// boundaries so an injected (or real) crash can restore-and-replay instead
// of losing the iteration. Only in-place-mutated buffers need deep copies:
// the dK/dV accumulators grow by addHead during backward slices. The KV
// cache grows in place but is append-only — rows below the snapshot's
// high-water mark are never rewritten, and replayed appends write
// bit-identical values — so a snapshot is a fresh header (freezing Rows)
// over the shared backing array. Slice/head saves are immutable once
// stored (lean saves are rebuilt during replay with bit-identical values)
// and shared by reference; the resilient runtime therefore runs without a
// scratch arena, which would recycle them.

// Clone returns a checkpoint copy of the state. The returned state shares
// the append-only KV cache storage (via independent headers) and the save
// entries with the original; the dK/dV accumulators are deep-copied.
func (st *LayerState) Clone() *LayerState {
	kHead := *st.K
	vHead := *st.V
	out := &LayerState{K: &kHead, V: &vHead, saves: make(map[int]*sliceSave, len(st.saves))}
	for k, sv := range st.saves {
		out.saves[k] = sv
	}
	if st.dK != nil {
		out.dK = st.dK.Clone()
		out.dV = st.dV.Clone()
	}
	return out
}

// Clone returns a checkpoint copy of the head state (fresh map, shared
// immutable saves).
func (st *HeadState) Clone() *HeadState {
	out := &HeadState{saves: make(map[int]*headSave, len(st.saves))}
	for k, sv := range st.saves {
		out.saves[k] = sv
	}
	return out
}
