package nn

import (
	"math"

	"mepipe/internal/tensor"
)

// Adam is the optimizer the paper trains with (§4.5 sizes the ZeRO shard
// around Adam's two moment buffers). Moments are kept in float32 per
// parameter tensor, mirroring the mixed-precision recipe.
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	step int
	mats map[*tensor.Matrix]*matState
	vecs map[*float32]*vecState
}

type matState struct{ m, v *tensor.Matrix }
type vecState struct{ m, v []float32 }

// NewAdam returns an optimizer with the usual defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		mats: map[*tensor.Matrix]*matState{},
		vecs: map[*float32]*vecState{},
	}
}

// Step applies one Adam update to every parameter of the model using the
// gradients currently accumulated.
func (a *Adam) Step(model *Model) {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))

	a.stepMat(model.Embed.Table, model.Embed.DTable, bc1, bc2)
	for _, l := range model.Layers {
		for _, lin := range []*Linear{&l.Wq, &l.Wk, &l.Wv, &l.Wo, &l.Wg, &l.Wu, &l.Wd} {
			a.stepMat(lin.W, lin.DW, bc1, bc2)
		}
		a.stepVec(l.AttnNorm, l.DAttnNorm, bc1, bc2)
		a.stepVec(l.MLPNorm, l.DMLPNorm, bc1, bc2)
	}
	a.stepMat(model.Head.W.W, model.Head.W.DW, bc1, bc2)
	a.stepVec(model.Head.Norm, model.Head.DNorm, bc1, bc2)
}

func (a *Adam) stepMat(w, g *tensor.Matrix, bc1, bc2 float32) {
	st, ok := a.mats[w]
	if !ok {
		st = &matState{m: tensor.New(w.Rows, w.Cols), v: tensor.New(w.Rows, w.Cols)}
		a.mats[w] = st
	}
	for i := range w.Data {
		gi := g.Data[i]
		st.m.Data[i] = a.Beta1*st.m.Data[i] + (1-a.Beta1)*gi
		st.v.Data[i] = a.Beta2*st.v.Data[i] + (1-a.Beta2)*gi*gi
		mh := st.m.Data[i] / bc1
		vh := st.v.Data[i] / bc2
		w.Data[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
	}
}

func (a *Adam) stepVec(w, g []float32, bc1, bc2 float32) {
	st, ok := a.vecs[&w[0]]
	if !ok {
		st = &vecState{m: make([]float32, len(w)), v: make([]float32, len(w))}
		a.vecs[&w[0]] = st
	}
	for i := range w {
		gi := g[i]
		st.m[i] = a.Beta1*st.m[i] + (1-a.Beta1)*gi
		st.v[i] = a.Beta2*st.v[i] + (1-a.Beta2)*gi*gi
		mh := st.m[i] / bc1
		vh := st.v[i] / bc2
		w[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
	}
}
