package sched

// Dependency semantics. These rules are the single source of truth shared by
// the validator, the discrete-event simulator, and the real goroutine
// runtime.
//
// Forward F(m, i, j)@k — slice i of micro-batch m through local chunk j of
// stage k, with g = Place.Global(k, j):
//
//  1. pipeline input: the same slice through the preceding global chunk
//     (F(m, i, ·) on Host(g−1)); absent for g = 0.
//  2. KV availability: causal attention of slice i reads the keys/values of
//     every preceding slice at the same layers, so F(m, i−1, j)@k must have
//     completed (Fig 3 of the paper); absent for i = 0.
//
// Backward B/BAct(m, i, j)@k:
//
//  1. gradient input: the same slice's backward on the succeeding global
//     chunk (backward traverses chunks in reverse order); for the final
//     chunk g = PV−1 the gradient originates at the loss, which requires
//     the slice's own forward F(m, i, j)@k.
//  2. KV gradients: d(K,V) of slice i accumulates contributions from every
//     later slice's backward at the same layers, so B(m, i+1, j)@k must
//     have completed; absent for i = S−1. (This is why the first backward
//     of a sample requires all its forwards: B of slice S−1 needs F of
//     slice S−1, which transitively needs all earlier slices.)
//  3. retained activations: the slice's own forward at this (stage, chunk),
//     F(m, i, j)@k. (Transitively implied by 1+2 but stated explicitly so
//     validation does not depend on that reasoning.)
//
// Weight gradient W/WPiece(m, i, j)@k: requires BAct(m, i, j)@k — and
// nothing else, which is what lets §5 defer and interleave them freely.

// Dep is a dependency edge: the op that must complete, and the stage it
// runs on. Cross-stage edges imply communication.
type Dep struct {
	Stage int
	Op    Op
}

// Deps appends the dependencies of op (running on stage) to dst and returns
// it. The caller chooses B vs BAct consistently with s.SplitBW.
func (s *Schedule) Deps(dst []Dep, stage int, op Op) []Dep {
	bKind := B
	if s.SplitBW {
		bKind = BAct
	}
	switch op.Kind {
	case F:
		g := s.Place.Global(stage, op.Chunk)
		if g > 0 {
			ps, pl := s.Place.Host(g - 1)
			dst = append(dst, Dep{ps, Op{Kind: F, Micro: op.Micro, Slice: op.Slice, Chunk: pl}})
		}
		if op.Slice > 0 {
			dst = append(dst, Dep{stage, Op{Kind: F, Micro: op.Micro, Slice: op.Slice - 1, Chunk: op.Chunk}})
		}
	case B, BAct:
		g := s.Place.Global(stage, op.Chunk)
		if g < s.TotalChunks()-1 {
			ns, nl := s.Place.Host(g + 1)
			dst = append(dst, Dep{ns, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice, Chunk: nl}})
		}
		if op.Slice < s.S-1 {
			dst = append(dst, Dep{stage, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice + 1, Chunk: op.Chunk}})
		}
		dst = append(dst, Dep{stage, Op{Kind: F, Micro: op.Micro, Slice: op.Slice, Chunk: op.Chunk}})
	case W, WPiece:
		dst = append(dst, Dep{stage, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice, Chunk: op.Chunk}})
	}
	return dst
}

// CrossStage reports whether a dependency edge carries a tensor between two
// different stages (and therefore costs communication).
func (d Dep) CrossStage(stage int) bool { return d.Stage != stage }

// DepTable is the dense dependency structure of a schedule shape: for the
// op with dense id i (per OpIndex), ID[Off[i]:Off[i+1]] holds the dense ids
// of its dependencies in Deps order, and OutID[OutOff[i]:OutOff[i+1]] the
// ids of its dependents (the reverse CSR, ascending, negatives dropped).
// The table depends only on the shape and placement — never on the order
// of Stages — so the generator, the certifier, and the simulator sessions
// can share one table per schedule instead of re-deriving, re-indexing,
// and re-scattering every Dep three times.
type DepTable struct {
	Ix  OpIndex
	Off []int32
	ID  []int32
	// OutOff/OutID are the dependents CSR over the same ids.
	OutOff []int32
	OutID  []int32
	// Cross is the number of cross-stage dependency edges, and Neg the
	// number of out-of-shape (-1) entries in ID; both are cached for the
	// certifier's statistics and fast-path gate.
	Cross int
	Neg   int
}

// DepTable returns the schedule's dense dependency table, building and
// caching it on first use (the generator pre-populates the cache). The
// cache is keyed by the shape fields, so mutating P/V/S/N/SplitBW/WPieces
// invalidates it automatically; swapping Place for a placement with
// different host/global maps while keeping the shape is not detected —
// construct a fresh Schedule instead.
//
// Dependency rules never cross micro-batches and the id layout keeps
// micro as the outermost per-stage coordinate, so the micro-m rows of a
// stage are the micro-0 rows shifted by m·V·S·slots. The builder derives
// only the micro-0 rows through Deps and shift-copies the rest, which is
// where generation-heavy paths (the sweep engine generates every grid
// point) win most of the table's cost back.
func (s *Schedule) DepTable() *DepTable {
	x := s.indexer()
	if s.depTab != nil && s.depTab.Ix.x == x {
		return s.depTab
	}
	total := x.total()
	vss := x.perStage / x.n // ops per (stage, micro) block
	t := &DepTable{Ix: OpIndex{x}, Off: make([]int32, total+1), ID: make([]int32, 0, 4*total)}
	var deps []Dep
	for k := 0; k < x.p; k++ {
		base := k * x.perStage
		m0 := len(t.ID)
		for rel := 0; rel < vss; rel++ {
			id := base + rel
			stage, op := x.opAt(int32(id))
			deps = s.Deps(deps[:0], stage, op)
			for _, d := range deps {
				t.ID = append(t.ID, x.id(d.Stage, d.Op))
			}
			t.Off[id+1] = int32(len(t.ID))
		}
		m0row := t.ID[m0:len(t.ID):len(t.ID)]
		for m := 1; m < x.n; m++ {
			shift := int32(m * vss)
			for _, v0 := range m0row {
				if v0 < 0 {
					t.ID = append(t.ID, v0)
				} else {
					t.ID = append(t.ID, v0+shift)
				}
			}
			mbase := base + m*vss
			for rel := 0; rel < vss; rel++ {
				t.Off[mbase+rel+1] = t.Off[mbase+rel] + (t.Off[base+rel+1] - t.Off[base+rel])
			}
		}
	}
	// Reverse CSR and edge statistics, in one counting pass and one
	// id-ordered scatter (so each OutID row comes out ascending).
	t.OutOff = make([]int32, total+1)
	perStage := int32(x.perStage)
	for id := 0; id < total; id++ {
		ks := int32(id) / perStage
		for _, from := range t.ID[t.Off[id]:t.Off[id+1]] {
			if from < 0 {
				t.Neg++
				continue
			}
			t.OutOff[from+1]++
			if from/perStage != ks {
				t.Cross++
			}
		}
	}
	for id := 0; id < total; id++ {
		t.OutOff[id+1] += t.OutOff[id]
	}
	t.OutID = make([]int32, t.OutOff[total])
	cursor := make([]int32, total)
	for id := 0; id < total; id++ {
		for _, from := range t.ID[t.Off[id]:t.Off[id+1]] {
			if from < 0 {
				continue
			}
			t.OutID[t.OutOff[from]+cursor[from]] = int32(id)
			cursor[from]++
		}
	}
	s.depTab = t
	return t
}
