package sched

// Dependency semantics. These rules are the single source of truth shared by
// the validator, the discrete-event simulator, and the real goroutine
// runtime.
//
// Forward F(m, i, j)@k — slice i of micro-batch m through local chunk j of
// stage k, with g = Place.Global(k, j):
//
//  1. pipeline input: the same slice through the preceding global chunk
//     (F(m, i, ·) on Host(g−1)); absent for g = 0.
//  2. KV availability: causal attention of slice i reads the keys/values of
//     every preceding slice at the same layers, so F(m, i−1, j)@k must have
//     completed (Fig 3 of the paper); absent for i = 0.
//
// Backward B/BAct(m, i, j)@k:
//
//  1. gradient input: the same slice's backward on the succeeding global
//     chunk (backward traverses chunks in reverse order); for the final
//     chunk g = PV−1 the gradient originates at the loss, which requires
//     the slice's own forward F(m, i, j)@k.
//  2. KV gradients: d(K,V) of slice i accumulates contributions from every
//     later slice's backward at the same layers, so B(m, i+1, j)@k must
//     have completed; absent for i = S−1. (This is why the first backward
//     of a sample requires all its forwards: B of slice S−1 needs F of
//     slice S−1, which transitively needs all earlier slices.)
//  3. retained activations: the slice's own forward at this (stage, chunk),
//     F(m, i, j)@k. (Transitively implied by 1+2 but stated explicitly so
//     validation does not depend on that reasoning.)
//
// Weight gradient W/WPiece(m, i, j)@k: requires BAct(m, i, j)@k — and
// nothing else, which is what lets §5 defer and interleave them freely.

// Dep is a dependency edge: the op that must complete, and the stage it
// runs on. Cross-stage edges imply communication.
type Dep struct {
	Stage int
	Op    Op
}

// Deps appends the dependencies of op (running on stage) to dst and returns
// it. The caller chooses B vs BAct consistently with s.SplitBW.
func (s *Schedule) Deps(dst []Dep, stage int, op Op) []Dep {
	bKind := B
	if s.SplitBW {
		bKind = BAct
	}
	switch op.Kind {
	case F:
		g := s.Place.Global(stage, op.Chunk)
		if g > 0 {
			ps, pl := s.Place.Host(g - 1)
			dst = append(dst, Dep{ps, Op{Kind: F, Micro: op.Micro, Slice: op.Slice, Chunk: pl}})
		}
		if op.Slice > 0 {
			dst = append(dst, Dep{stage, Op{Kind: F, Micro: op.Micro, Slice: op.Slice - 1, Chunk: op.Chunk}})
		}
	case B, BAct:
		g := s.Place.Global(stage, op.Chunk)
		if g < s.TotalChunks()-1 {
			ns, nl := s.Place.Host(g + 1)
			dst = append(dst, Dep{ns, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice, Chunk: nl}})
		}
		if op.Slice < s.S-1 {
			dst = append(dst, Dep{stage, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice + 1, Chunk: op.Chunk}})
		}
		dst = append(dst, Dep{stage, Op{Kind: F, Micro: op.Micro, Slice: op.Slice, Chunk: op.Chunk}})
	case W, WPiece:
		dst = append(dst, Dep{stage, Op{Kind: bKind, Micro: op.Micro, Slice: op.Slice, Chunk: op.Chunk}})
	}
	return dst
}

// CrossStage reports whether a dependency edge carries a tensor between two
// different stages (and therefore costs communication).
func (d Dep) CrossStage(stage int) bool { return d.Stage != stage }
