package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"mepipe/internal/errs"
)

// Serialization lets schedules travel as artifacts: a generated (and
// possibly hand-tuned) order can be saved, inspected, diffed, and replayed
// by the simulator or the real runtime later. Load validates, so a
// tampered file cannot smuggle in a deadlocking order.

type scheduleJSON struct {
	Name    string   `json:"name"`
	P       int      `json:"p"`
	V       int      `json:"v"`
	S       int      `json:"s"`
	N       int      `json:"n"`
	SplitBW bool     `json:"split_bw"`
	WPieces int      `json:"w_pieces,omitempty"`
	Place   string   `json:"placement"`
	Stages  [][]ated `json:"stages"`
}

// ated is the compact op encoding [kind, micro, slice, chunk, piece].
type ated [5]int

const (
	placeRoundRobin = "round-robin"
	placeWave       = "wave"
)

// Save writes the schedule as JSON.
func (s *Schedule) Save(w io.Writer) error {
	doc := scheduleJSON{
		Name: s.Name, P: s.P, V: s.V, S: s.S, N: s.N,
		SplitBW: s.SplitBW, WPieces: s.WPieces,
	}
	switch s.Place.(type) {
	case RoundRobin:
		doc.Place = placeRoundRobin
	case Wave:
		doc.Place = placeWave
	default:
		return fmt.Errorf("sched: cannot serialise custom placement %T: %w", s.Place, errs.ErrIncompatible)
	}
	for _, ops := range s.Stages {
		row := make([]ated, len(ops))
		for i, op := range ops {
			row[i] = ated{int(op.Kind), op.Micro, op.Slice, op.Chunk, op.Piece}
		}
		doc.Stages = append(doc.Stages, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Load reads and validates a schedule saved by Save.
func Load(r io.Reader) (*Schedule, error) {
	var doc scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	s := &Schedule{
		Name: doc.Name, P: doc.P, V: doc.V, S: doc.S, N: doc.N,
		SplitBW: doc.SplitBW, WPieces: doc.WPieces,
	}
	switch doc.Place {
	case placeRoundRobin:
		s.Place = RoundRobin{P: doc.P, V: doc.V}
	case placeWave:
		if doc.V != 2 {
			return nil, fmt.Errorf("sched: wave placement requires v=2, got %d: %w", doc.V, errs.ErrIncompatible)
		}
		s.Place = Wave{P: doc.P}
	default:
		return nil, fmt.Errorf("sched: unknown placement %q: %w", doc.Place, errs.ErrIncompatible)
	}
	for _, row := range doc.Stages {
		ops := make([]Op, len(row))
		for i, a := range row {
			ops[i] = Op{Kind: Kind(a[0]), Micro: a[1], Slice: a[2], Chunk: a[3], Piece: a[4]}
		}
		s.Stages = append(s.Stages, ops)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: loaded schedule invalid: %w", err)
	}
	return s, nil
}
