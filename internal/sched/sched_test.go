package sched

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{F: "F", B: "B", BAct: "b", W: "W", WPiece: "w"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	rr := RoundRobin{P: 4, V: 3}
	for g := 0; g < 12; g++ {
		stage, local := rr.Host(g)
		if got := rr.Global(stage, local); got != g {
			t.Errorf("round-robin: Host(%d) = (%d,%d) but Global = %d", g, stage, local, got)
		}
	}
	// Fig 4(b): with p=4 the second chunk of stage 0 is global chunk 4,
	// directly after global chunk 3 on stage 3.
	if s, l := rr.Host(4); s != 0 || l != 1 {
		t.Errorf("Host(4) = (%d,%d), want (0,1)", s, l)
	}
}

func TestWavePlacement(t *testing.T) {
	w := Wave{P: 4}
	for g := 0; g < 8; g++ {
		stage, local := w.Host(g)
		if got := w.Global(stage, local); got != g {
			t.Errorf("wave: Host(%d) = (%d,%d) but Global = %d", g, stage, local, got)
		}
	}
	// The wave reflects: chunk p lives on the last stage.
	if s, _ := w.Host(4); s != 3 {
		t.Errorf("wave Host(4) on stage %d, want 3", s)
	}
	if s, _ := w.Host(7); s != 0 {
		t.Errorf("wave Host(7) on stage %d, want 0", s)
	}
}

func TestDepsForward(t *testing.T) {
	s := &Schedule{P: 4, V: 2, S: 2, N: 2, Place: RoundRobin{P: 4, V: 2}}
	// First op of the iteration has no dependencies.
	d := s.Deps(nil, 0, Op{Kind: F, Micro: 0, Slice: 0, Chunk: 0})
	if len(d) != 0 {
		t.Errorf("F[m0 s0 c0]@0 deps = %v, want none", d)
	}
	// Slice 1 needs slice 0's KV on the same stage.
	d = s.Deps(nil, 0, Op{Kind: F, Micro: 0, Slice: 1, Chunk: 0})
	if len(d) != 1 || d[0].Stage != 0 || d[0].Op.Slice != 0 {
		t.Errorf("F[m0 s1 c0]@0 deps = %v, want KV dep on slice 0", d)
	}
	// Stage 0's second chunk depends on stage 3's first chunk (wrap).
	d = s.Deps(nil, 0, Op{Kind: F, Micro: 0, Slice: 0, Chunk: 1})
	found := false
	for _, dep := range d {
		if dep.Stage == 3 && dep.Op.Kind == F && dep.Op.Chunk == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("F[m0 s0 c1]@0 deps = %v, want wrap dep on stage 3 chunk 0", d)
	}
}

func TestDepsBackward(t *testing.T) {
	s := &Schedule{P: 4, V: 2, S: 2, N: 2, Place: RoundRobin{P: 4, V: 2}}
	// The very first backward: B of the last slice on the last global
	// chunk requires only its own forward (the loss) — plus nothing else.
	d := s.Deps(nil, 3, Op{Kind: B, Micro: 0, Slice: 1, Chunk: 1})
	if len(d) != 1 || d[0].Op.Kind != F || d[0].Stage != 3 {
		t.Errorf("first backward deps = %v, want only its own forward", d)
	}
	// B of slice 0 additionally needs slice 1's backward (KV gradients).
	d = s.Deps(nil, 3, Op{Kind: B, Micro: 0, Slice: 0, Chunk: 1})
	var kv bool
	for _, dep := range d {
		if dep.Stage == 3 && dep.Op.Kind == B && dep.Op.Slice == 1 {
			kv = true
		}
	}
	if !kv {
		t.Errorf("B[m0 s0 c1]@3 deps = %v, want KV-gradient dep on slice 1", d)
	}
	// Backward chunk wrap: B on stage 3 chunk 0 gets its gradient from
	// stage 0 chunk 1 (global chunk 4 follows global chunk 3).
	d = s.Deps(nil, 3, Op{Kind: B, Micro: 0, Slice: 1, Chunk: 0})
	var wrap bool
	for _, dep := range d {
		if dep.Stage == 0 && dep.Op.Kind == B && dep.Op.Chunk == 1 {
			wrap = true
		}
	}
	if !wrap {
		t.Errorf("B[m0 s1 c0]@3 deps = %v, want gradient wrap from stage 0 chunk 1", d)
	}
}

func TestDepsWeightGrad(t *testing.T) {
	s := &Schedule{P: 2, V: 1, S: 1, N: 1, SplitBW: true, WPieces: 3, Place: RoundRobin{P: 2, V: 1}}
	d := s.Deps(nil, 1, Op{Kind: WPiece, Micro: 0, Piece: 2})
	if len(d) != 1 || d[0].Op.Kind != BAct || d[0].Stage != 1 {
		t.Errorf("WPiece deps = %v, want only same-stage BAct", d)
	}
}

func TestValidateCatchesMissingOp(t *testing.T) {
	s, err := DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Stages[0] = s.Stages[0][:len(s.Stages[0])-1]
	if err := s.Validate(); err == nil {
		t.Error("validation accepted a schedule with a missing op")
	}
}

func TestValidateCatchesDuplicate(t *testing.T) {
	s, err := DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Stages[0][len(s.Stages[0])-1] = s.Stages[0][0]
	if err := s.Validate(); err == nil {
		t.Error("validation accepted a schedule with a duplicated op")
	}
}

func TestValidateCatchesDeadlock(t *testing.T) {
	s, err := DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Putting all backwards before all forwards on stage 0 deadlocks
	// against stage 1 (B needs grads that need stage 0's forwards).
	ops := s.Stages[0]
	var reordered []Op
	for _, op := range ops {
		if op.Kind == B {
			reordered = append(reordered, op)
		}
	}
	for _, op := range ops {
		if op.Kind == F {
			reordered = append(reordered, op)
		}
	}
	s.Stages[0] = reordered
	if err := s.Validate(); err == nil {
		t.Error("validation accepted a deadlocking order")
	}
}

func TestValidateCatchesFusedSplitMismatch(t *testing.T) {
	s, err := DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SplitBW = true // claims split but contains fused B ops
	if err := s.Validate(); err == nil {
		t.Error("validation accepted fused ops in a split schedule")
	}
}

func TestGenerateRejectsBadShape(t *testing.T) {
	if _, err := Generate(GenOptions{P: 0, V: 1, S: 1, N: 1}); err == nil {
		t.Error("generator accepted p=0")
	}
}

func TestDefaultF(t *testing.T) {
	// §4.4: f = v·max(p,s) + min(p,s) − 1.
	cases := []struct{ p, v, s, want int }{
		{4, 1, 2, 5},  // Fig 4(a): 5 slice activations
		{4, 2, 2, 9},  // Fig 4(b): 9 chunk-slice activations
		{8, 1, 1, 8},  // DAPPLE limit
		{4, 1, 8, 11}, // s > p
	}
	for _, c := range cases {
		if got := DefaultF(c.p, c.v, c.s); got != c.want {
			t.Errorf("DefaultF(%d,%d,%d) = %d, want %d", c.p, c.v, c.s, got, c.want)
		}
	}
}

func TestDAPPLEIsOneFOneB(t *testing.T) {
	s, err := DAPPLE(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The last stage must strictly alternate F,B,F,B,…
	last := s.Stages[3]
	for i, op := range last {
		want := F
		if i%2 == 1 {
			want = B
		}
		if op.Kind != want {
			t.Fatalf("stage 3 op %d is %s, want kind %s", i, op, want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	s, err := MEPipe(4, 1, 2, 4, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "MEPipe") || !strings.Contains(str, "s=2") {
		t.Errorf("String() = %q", str)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	builds := []func() (*Schedule, error){
		func() (*Schedule, error) { return DAPPLE(4, 6, nil) },
		func() (*Schedule, error) { return MEPipe(4, 2, 2, 3, 0, 3, nil) },
		func() (*Schedule, error) { return ZBV(4, 4, nil) },
	}
	for _, build := range builds {
		orig, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != orig.String() || got.WPieces != orig.WPieces {
			t.Fatalf("round trip changed header: %s vs %s", got, orig)
		}
		for k := range orig.Stages {
			if len(got.Stages[k]) != len(orig.Stages[k]) {
				t.Fatalf("stage %d length changed", k)
			}
			for i := range orig.Stages[k] {
				if got.Stages[k][i] != orig.Stages[k][i] {
					t.Fatalf("stage %d op %d changed: %v vs %v", k, i, got.Stages[k][i], orig.Stages[k][i])
				}
			}
		}
	}
}

func TestLoadRejectsTampered(t *testing.T) {
	orig, err := DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Reorder stage 0 into a deadlock (all backwards first).
	tampered := strings.Replace(buf.String(),
		`[[0,0,0,0,0],[0,1,0,0,0],[1,0,0,0,0],[1,1,0,0,0]]`,
		`[[1,0,0,0,0],[1,1,0,0,0],[0,0,0,0,0],[0,1,0,0,0]]`, 1)
	if tampered == buf.String() {
		t.Fatalf("test setup: stage encoding not found in %s", buf.String())
	}
	if _, err := Load(strings.NewReader(tampered)); err == nil {
		t.Error("tampered (deadlocking) schedule loaded without error")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"placement":"diagonal","p":1,"v":1,"s":1,"n":1}`)); err == nil {
		t.Error("unknown placement accepted")
	}
}

func TestOpKey(t *testing.T) {
	op := Op{Kind: WPiece, Micro: 3, Slice: 1, Chunk: 2, Piece: 5}
	k := op.Key()
	if k.Piece != 0 || k.Kind != F || k.Micro != 3 || k.Slice != 1 || k.Chunk != 2 {
		t.Errorf("Key() = %+v", k)
	}
	b := Op{Kind: BAct, Micro: 3, Slice: 1, Chunk: 2}
	if b.Key() != k {
		t.Error("family members must share a key")
	}
}

func TestOpsPerStage(t *testing.T) {
	cases := []struct {
		s    Schedule
		want int
	}{
		{Schedule{P: 4, V: 1, S: 1, N: 6}, 12},
		{Schedule{P: 4, V: 2, S: 3, N: 2, SplitBW: true}, 36},
		{Schedule{P: 4, V: 1, S: 2, N: 2, SplitBW: true, WPieces: 7}, 36},
	}
	for i, c := range cases {
		if got := c.s.OpsPerStage(); got != c.want {
			t.Errorf("case %d: OpsPerStage = %d, want %d", i, got, c.want)
		}
	}
}

// TestForceProgressPath: deep virtual pipelines under tight caps must
// engage stall recovery and still produce valid schedules (the shapes the
// original greedy deadlocked on).
func TestForceProgressPath(t *testing.T) {
	for _, f := range []int{5, 6, 7} {
		s, err := SVPP(SVPPOptions{P: 4, V: 3, S: 1, N: 4, F: f})
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
	}
}

// TestWaveWithSplitShapes: ZBV across pipeline depths.
func TestWaveWithSplitShapes(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{1, 3, 8} {
			s, err := ZBV(p, n, nil)
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			// Every W must appear after its BAct on the same stage.
			for k, ops := range s.Stages {
				seen := map[Op]bool{}
				for _, op := range ops {
					if op.Kind == W {
						b := op
						b.Kind = BAct
						if !seen[b] {
							t.Fatalf("p=%d n=%d stage %d: %v before its backward", p, n, k, op)
						}
					}
					seen[op] = true
				}
			}
		}
	}
}
