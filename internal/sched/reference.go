package sched

// The frozen pre-sweep generator and validator, kept verbatim from the
// tree as it stood before the streaming sweep engine landed: map-indexed
// op universe, per-node dependent slices, and the standalone two-pass
// Validate. strategy.SearchReference builds schedules through
// GenerateReference so that mepipe-bench's reported speedup compares the
// sweep engine against the code it actually replaced, and so the
// equivalence tests pin the optimized generator (dense index, cached
// dependency table, pooled arenas) against a genuinely independent
// implementation.
//
// Nothing here is reachable from production paths; do not "optimize" this
// file — its value is that it does not change.

import (
	"fmt"
	"math"

	"mepipe/internal/errs"
)

// ValidateReference is the frozen pre-sweep Schedule.Validate: the same
// completeness and acyclicity guarantees, proven with the original
// map-based passes.
func ValidateReference(s *Schedule) error {
	if s.P <= 0 || s.V <= 0 || s.S <= 0 || s.N <= 0 {
		return fmt.Errorf("sched: %s has non-positive shape: %w", s, errs.ErrIncompatible)
	}
	if len(s.Stages) != s.P {
		return fmt.Errorf("sched: %s has %d stage lists, want %d: %w", s, len(s.Stages), s.P, errs.ErrIncompatible)
	}
	if s.Place == nil {
		return fmt.Errorf("sched: %s has no chunk placement: %w", s, errs.ErrIncompatible)
	}
	if err := refCheckComplete(s); err != nil {
		return err
	}
	return refCheckAcyclic(s)
}

// refNode tracks refGenerator state for one op on one stage.
type refNode struct {
	op        Op
	dur       float64
	remaining int     // unscheduled dependencies
	ready     float64 // max(dep finish + comm) once remaining == 0
	scheduled bool
	outs      []int32 // dependents, as indices into the stage-local pool... (global ids)
}

type refGenStage struct {
	free     float64
	inflight int
	deferred int // outstanding W families (split mode)
	// ready op ids by class. readyF/readyB are scanned in full (their
	// sizes are bounded by the in-flight caps or the pipeline width);
	// readyW is kept sorted by fPriority with an advancing head, because
	// a ready weight-gradient op's only dependency (its same-stage BAct)
	// has always already executed — every entry starts at st.free, so
	// the priority-sorted head IS the best candidate.
	readyF, readyB []int32
	readyW         []int32
	wHead          int
	// cached pick() result, recomputed only when the stage's state
	// changed since the last decision (dirty).
	cached candidate
	dirty  bool
	// bookkeeping for the oldest-micro headroom rule
	unschedF []int // per micro: unscheduled F ops on this stage
	unschedB []int // per micro: unscheduled B-class ops on this stage
	oldest   int   // smallest micro with unscheduled B ops
	pending  int
	order    []Op
}

// GenerateReference builds and validates a schedule per opt.
func GenerateReference(opt GenOptions) (*Schedule, error) {
	s := &Schedule{
		Name: opt.Name, P: opt.P, V: opt.V, S: opt.S, N: opt.N,
		SplitBW: opt.SplitBW, WPieces: opt.WPieces, Place: opt.Place,
	}
	if s.Place == nil {
		s.Place = RoundRobin{P: opt.P, V: opt.V}
	}
	if opt.Est == nil {
		opt.Est = Unit()
	}
	if opt.P <= 0 || opt.V <= 0 || opt.S <= 0 || opt.N <= 0 {
		return nil, fmt.Errorf("sched: generate %s: non-positive shape p=%d v=%d s=%d n=%d: %w", opt.Name, opt.P, opt.V, opt.S, opt.N, errs.ErrIncompatible)
	}
	g := newRefGenerator(s, opt)
	if err := g.run(); err != nil {
		return nil, err
	}
	for k := range g.stages {
		s.Stages = append(s.Stages, g.stages[k].order)
	}
	if err := ValidateReference(s); err != nil {
		return nil, fmt.Errorf("sched: refGenerator produced invalid schedule: %w", err)
	}
	return s, nil
}

type refGenerator struct {
	s      *Schedule
	opt    GenOptions
	nodes  []refNode
	index  map[stageOp]int32
	stages []refGenStage
	finish []float64
	total  int
	done   int
}

func newRefGenerator(s *Schedule, opt GenOptions) *refGenerator {
	g := &refGenerator{s: s, opt: opt, index: make(map[stageOp]int32)}
	g.stages = make([]refGenStage, s.P)
	// Build the op universe.
	bKind := B
	if s.SplitBW {
		bKind = BAct
	}
	var all []stageOp
	for k := 0; k < s.P; k++ {
		st := &g.stages[k]
		st.unschedF = make([]int, s.N)
		st.unschedB = make([]int, s.N)
		for m := 0; m < s.N; m++ {
			for j := 0; j < s.V; j++ {
				for i := 0; i < s.S; i++ {
					fam := Op{Micro: m, Slice: i, Chunk: j}
					ops := []Op{{Kind: F, Micro: m, Slice: i, Chunk: j}, {Kind: bKind, Micro: m, Slice: i, Chunk: j}}
					if s.SplitBW {
						if s.WPieces > 0 {
							for p := 0; p < s.WPieces; p++ {
								w := fam
								w.Kind = WPiece
								w.Piece = p
								ops = append(ops, w)
							}
						} else {
							w := fam
							w.Kind = W
							ops = append(ops, w)
						}
					}
					for _, op := range ops {
						g.index[stageOp{k, op}] = int32(len(all))
						all = append(all, stageOp{k, op})
					}
					st.unschedF[m]++
					st.unschedB[m]++
				}
			}
		}
		st.pending = 0
	}
	g.total = len(all)
	g.nodes = make([]refNode, len(all))
	g.finish = make([]float64, len(all))
	var deps []Dep
	for id, so := range all {
		n := &g.nodes[id]
		n.op = so.op
		n.dur = opt.Est.OpTime(so.stage, so.op)
		deps = s.Deps(deps[:0], so.stage, so.op)
		n.remaining = len(deps)
		for _, d := range deps {
			from := g.index[stageOp{d.Stage, d.Op}]
			g.nodes[from].outs = append(g.nodes[from].outs, int32(id))
		}
		g.stages[so.stage].pending++
	}
	// Seed ready lists.
	for id := range g.nodes {
		if g.nodes[id].remaining == 0 {
			g.markReady(int32(id), all[id].stage)
		}
	}
	return g
}

func (g *refGenerator) markReady(id int32, stage int) {
	st := &g.stages[stage]
	st.dirty = true
	switch g.nodes[id].op.Kind {
	case F:
		st.readyF = append(st.readyF, id)
	case B, BAct:
		st.readyB = append(st.readyB, id)
	default:
		g.insertW(st, id)
	}
}

// insertW keeps readyW[wHead:] sorted by fPriority. Weight-gradient work is
// enqueued in nearly increasing priority order (families complete their
// BAct in roughly micro order), so the binary search almost always appends.
func (g *refGenerator) insertW(st *refGenStage, id int32) {
	key := fPriority(g.nodes[id].op)
	lo, hi := st.wHead, len(st.readyW)
	for lo < hi {
		mid := (lo + hi) / 2
		if less4(fPriority(g.nodes[st.readyW[mid]].op), key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	st.readyW = append(st.readyW, 0)
	copy(st.readyW[lo+1:], st.readyW[lo:])
	st.readyW[lo] = id
}

func (g *refGenerator) cap(stage int) int {
	c := math.MaxInt
	if g.opt.InFlightCap != nil {
		c = g.opt.InFlightCap(stage)
	}
	if min := g.s.V * g.s.S; c < min {
		c = min
	}
	return c
}

func (g *refGenerator) wCap(stage int) int {
	if g.opt.WDeferCap == nil {
		return math.MaxInt
	}
	c := g.opt.WDeferCap(stage)
	if c < 0 {
		return math.MaxInt
	}
	return c
}

// bPriority returns a sort key (smaller = preferred) among ready backwards.
func (g *refGenerator) bPriority(stage int, op Op) [4]int {
	gl := g.s.Place.Global(stage, op.Chunk)
	if g.opt.Reschedule {
		// Fig 6: prefer the backward with the most descendants —
		// (slice+1)·(globalChunk+1)−1 backwards transitively depend
		// on it.
		desc := (op.Slice + 1) * (gl + 1)
		return [4]int{-desc, op.Micro, 0, 0}
	}
	return [4]int{op.Micro, -gl, -op.Slice, 0}
}

// chooseF picks the best eligible forward for a stage.
//
// Eligibility keeps the cap from starving the critical chain: a backward of
// micro m runs only after ALL of m's forwards ran on this stage (each later
// chunk transitively revisits the stage), so a forward of a younger micro is
// admitted only if headroom remains for the oldest live micro's unscheduled
// forwards. This matches the hand-written Megatron/MEPipe orders; the rare
// shapes it cannot protect (deep virtual pipelines under aggressive memory
// knobs, where the oldest micro changes while younger ones hold capacity)
// are handled by the stall-recovery path in run.
func (g *refGenerator) chooseF(k int) candidate {
	st := &g.stages[k]
	limit := g.cap(k)
	reserve := 0
	if st.oldest < g.s.N {
		reserve = st.unschedF[st.oldest]
	}
	best := candidate{}
	for _, id := range st.readyF {
		op := g.nodes[id].op
		need := st.inflight
		if op.Micro != st.oldest {
			need += reserve
		}
		if need >= limit {
			continue
		}
		start := math.Max(st.free, g.nodes[id].ready)
		if !best.ok || start < best.start-timeEps ||
			(start < best.start+timeEps && less4(fPriority(op), fPriority(g.nodes[best.id].op))) {
			best = candidate{id: id, start: start, kind: F, ok: true}
		}
	}
	return best
}

func (g *refGenerator) chooseB(k int) candidate {
	st := &g.stages[k]
	best := candidate{}
	for _, id := range st.readyB {
		op := g.nodes[id].op
		start := math.Max(st.free, g.nodes[id].ready)
		if !best.ok || start < best.start-timeEps ||
			(start < best.start+timeEps && less4(g.bPriority(k, op), g.bPriority(k, g.nodes[best.id].op))) {
			best = candidate{id: id, start: start, kind: op.Kind, ok: true}
		}
	}
	return best
}

func (g *refGenerator) chooseW(k int) candidate {
	st := &g.stages[k]
	if st.wHead >= len(st.readyW) {
		return candidate{}
	}
	id := st.readyW[st.wHead]
	op := g.nodes[id].op
	start := math.Max(st.free, g.nodes[id].ready)
	return candidate{id: id, start: start, kind: op.Kind, ok: true}
}

func (g *refGenerator) run() error {
	stageIDs := g.rebuildStageIndex()
	for k := range g.stages {
		g.stages[k].dirty = true
	}
	for g.done < g.total {
		bestStage := -1
		var best candidate
		for k := 0; k < g.s.P; k++ {
			st := &g.stages[k]
			if st.pending == 0 {
				continue
			}
			if st.dirty {
				st.cached = g.pick(k)
				st.dirty = false
			}
			c := st.cached
			if !c.ok {
				continue
			}
			if bestStage < 0 || c.start < best.start-timeEps {
				bestStage, best = k, c
			}
		}
		if bestStage < 0 {
			// Global stall: every stage is either empty, at its cap,
			// or waiting on another stage. Force the critical chain
			// through — run a ready forward of some stage's oldest
			// live micro-batch even though the stage is at its cap.
			// This momentarily exceeds the memory knob but is the
			// only way the oldest micro's backward (which frees the
			// capacity) can ever become runnable. It triggers only
			// for deep virtual pipelines under aggressive memory
			// limits, never for the paper's configurations.
			bestStage, best = g.forceProgress()
			if bestStage < 0 {
				return fmt.Errorf("sched: generate %s: deadlocked with %d/%d ops scheduled: %w\n%s", g.s, g.done, g.total, errs.ErrUncertified, g.dumpStall())
			}
		}
		g.commit(bestStage, best, stageIDs)
	}
	return nil
}

// forceProgress picks a cap-exempt forward for stall recovery: the ready
// forward of a stage's oldest live micro with the earliest possible start
// (preferring, among ties, the oldest micro globally).
func (g *refGenerator) forceProgress() (int, candidate) {
	bestStage := -1
	var best candidate
	for k := 0; k < g.s.P; k++ {
		st := &g.stages[k]
		for _, id := range st.readyF {
			op := g.nodes[id].op
			if op.Micro != st.oldest {
				continue
			}
			start := math.Max(st.free, g.nodes[id].ready)
			c := candidate{id: id, start: start, kind: F, ok: true}
			if bestStage < 0 || c.start < best.start-timeEps ||
				(c.start < best.start+timeEps && op.Micro < g.nodes[best.id].op.Micro) {
				bestStage, best = k, c
			}
		}
	}
	return bestStage, best
}

func (g *refGenerator) dumpStall() string {
	out := ""
	for k := range g.stages {
		st := &g.stages[k]
		out += fmt.Sprintf("stage %d: pending=%d inflight=%d cap=%d oldest=m%d readyF=[", k, st.pending, st.inflight, g.cap(k), st.oldest)
		for _, id := range st.readyF {
			out += g.nodes[id].op.String() + " "
		}
		out += "] readyB=["
		for _, id := range st.readyB {
			out += g.nodes[id].op.String() + " "
		}
		out += fmt.Sprintf("] unschedF(oldest)=%d\n", st.unschedF[min(st.oldest, g.s.N-1)])
	}
	return out
}

func (g *refGenerator) rebuildStageIndex() map[int32]int {
	m := make(map[int32]int, g.total)
	for so, id := range g.index {
		m[id] = so.stage
	}
	return m
}

// pick selects the next op for stage k per the policy.
func (g *refGenerator) pick(k int) candidate {
	st := &g.stages[k]
	// Forced weight gradients: too many deferred.
	if g.s.SplitBW && st.deferred >= g.wCap(k) {
		if c := g.chooseW(k); c.ok {
			return c
		}
	}
	cf := g.chooseF(k)
	cb := g.chooseB(k)
	var main candidate
	switch {
	case cf.ok && cb.ok:
		if cf.start <= cb.start+timeEps {
			main = cf
		} else {
			main = cb
		}
	case cf.ok:
		main = cf
	case cb.ok:
		main = cb
	}
	if !g.s.SplitBW {
		return main
	}
	cw := g.chooseW(k)
	if !cw.ok {
		return main
	}
	if !main.ok {
		return cw
	}
	// Gap filling (§5 / zero-bubble): run a weight-gradient op only when
	// it completes before the main candidate could start anyway.
	if cw.start+g.nodes[cw.id].dur <= main.start+timeEps {
		return cw
	}
	return main
}

func (g *refGenerator) commit(k int, c candidate, stageIDs map[int32]int) {
	st := &g.stages[k]
	st.dirty = true
	n := &g.nodes[c.id]
	n.scheduled = true
	fin := c.start + n.dur
	g.finish[c.id] = fin
	st.free = fin
	st.order = append(st.order, n.op)
	st.pending--
	g.done++
	switch n.op.Kind {
	case F:
		st.inflight++
		st.unschedF[n.op.Micro]--
		st.readyF = removeID(st.readyF, c.id)
	case B, BAct:
		st.inflight--
		st.unschedB[n.op.Micro]--
		if g.s.SplitBW {
			if g.s.WPieces > 0 {
				st.deferred += g.s.WPieces
			} else {
				st.deferred++
			}
		}
		if n.op.Micro == st.oldest && st.unschedB[n.op.Micro] == 0 {
			for st.oldest < g.s.N && st.unschedB[st.oldest] == 0 {
				st.oldest++
			}
		}
		st.readyB = removeID(st.readyB, c.id)
	case W, WPiece:
		st.deferred--
		// chooseW only ever proposes the head.
		if st.wHead >= len(st.readyW) || st.readyW[st.wHead] != c.id {
			panic("sched: refGenerator committed a non-head weight-gradient op")
		}
		st.wHead++
		if st.wHead == len(st.readyW) {
			st.readyW = st.readyW[:0]
			st.wHead = 0
		}
	}
	// Wake dependents.
	for _, dep := range n.outs {
		d := &g.nodes[dep]
		ds := stageIDs[dep]
		t := fin
		if ds != k {
			t += g.opt.Est.CommTime(k, ds, n.op)
		}
		if t > d.ready {
			d.ready = t
		}
		d.remaining--
		if d.remaining == 0 {
			g.markReady(dep, ds)
		}
	}
}

type stageOp struct {
	stage int
	op    Op
}

func refCheckComplete(s *Schedule) error {
	for k, ops := range s.Stages {
		seen := make(map[Op]bool, len(ops))
		for _, op := range ops {
			if err := refCheckShape(s, k, op); err != nil {
				return err
			}
			if seen[op] {
				return fmt.Errorf("sched: %s stage %d: duplicate op %s: %w", s, k, op, errs.ErrIncompatible)
			}
			seen[op] = true
		}
		want := s.OpsPerStage()
		if len(ops) != want {
			return fmt.Errorf("sched: %s stage %d: %d ops, want %d: %w", s, k, len(ops), want, errs.ErrIncompatible)
		}
		// Completeness: every (kind, m, i, j[, piece]) present.
		for m := 0; m < s.N; m++ {
			for i := 0; i < s.S; i++ {
				for j := 0; j < s.V; j++ {
					if err := refCheckFamily(s, seen, k, m, i, j); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func refCheckShape(s *Schedule, stage int, op Op) error {
	if op.Micro < 0 || op.Micro >= s.N || op.Slice < 0 || op.Slice >= s.S || op.Chunk < 0 || op.Chunk >= s.V {
		return fmt.Errorf("sched: %s stage %d: op %s out of range: %w", s, stage, op, errs.ErrIncompatible)
	}
	switch op.Kind {
	case F:
	case B:
		if s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: fused %s in split schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case BAct:
		if !s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: %s in fused schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case W:
		if !s.SplitBW || s.WPieces > 0 {
			return fmt.Errorf("sched: %s stage %d: unexpected whole %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	case WPiece:
		if !s.SplitBW || s.WPieces == 0 || op.Piece < 0 || op.Piece >= s.WPieces {
			return fmt.Errorf("sched: %s stage %d: unexpected %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	default:
		return fmt.Errorf("sched: %s stage %d: unknown kind in %s: %w", s, stage, op, errs.ErrIncompatible)
	}
	return nil
}

func refCheckFamily(s *Schedule, seen map[Op]bool, stage, m, i, j int) error {
	need := []Op{{Kind: F, Micro: m, Slice: i, Chunk: j}}
	switch {
	case !s.SplitBW:
		need = append(need, Op{Kind: B, Micro: m, Slice: i, Chunk: j})
	case s.WPieces == 0:
		need = append(need,
			Op{Kind: BAct, Micro: m, Slice: i, Chunk: j},
			Op{Kind: W, Micro: m, Slice: i, Chunk: j})
	default:
		need = append(need, Op{Kind: BAct, Micro: m, Slice: i, Chunk: j})
		for p := 0; p < s.WPieces; p++ {
			need = append(need, Op{Kind: WPiece, Micro: m, Slice: i, Chunk: j, Piece: p})
		}
	}
	for _, op := range need {
		if !seen[op] {
			return fmt.Errorf("sched: %s stage %d: missing op %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm over program-order and data edges.
func refCheckAcyclic(s *Schedule) error {
	index := make(map[stageOp]int) // refNode id
	var nodes []stageOp
	id := func(k int, op Op) int {
		so := stageOp{k, op}
		if i, ok := index[so]; ok {
			return i
		}
		index[so] = len(nodes)
		nodes = append(nodes, so)
		return len(nodes) - 1
	}
	for k, ops := range s.Stages {
		for _, op := range ops {
			id(k, op)
		}
	}
	adj := make([][]int32, len(nodes))
	indeg := make([]int32, len(nodes))
	addEdge := func(from, to int) {
		adj[from] = append(adj[from], int32(to))
		indeg[to]++
	}
	var deps []Dep
	for k, ops := range s.Stages {
		for idx, op := range ops {
			to := id(k, op)
			if idx > 0 {
				addEdge(id(k, ops[idx-1]), to) // program order
			}
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				from, ok := index[stageOp{d.Stage, d.Op}]
				if !ok {
					return fmt.Errorf("sched: %s stage %d: op %s depends on absent %s@stage%d: %w", s, k, op, d.Op, d.Stage, errs.ErrIncompatible)
				}
				addEdge(from, to)
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, t := range adj[n] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, int(t))
			}
		}
	}
	if done != len(nodes) {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("sched: %s deadlocks: op %s@stage%d is on a dependency cycle: %w", s, nodes[i].op, nodes[i].stage, errs.ErrUncertified)
			}
		}
	}
	return nil
}
