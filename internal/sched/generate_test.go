package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPresetsValid exercises every preset constructor across a grid of
// shapes; Generate self-validates, so construction succeeding is the
// assertion.
func TestPresetsValid(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			if _, err := GPipe(p, n, nil); err != nil {
				t.Errorf("GPipe(%d,%d): %v", p, n, err)
			}
			if _, err := DAPPLE(p, n, nil); err != nil {
				t.Errorf("DAPPLE(%d,%d): %v", p, n, err)
			}
			if _, err := ZB1P(p, n, nil); err != nil {
				t.Errorf("ZB1P(%d,%d): %v", p, n, err)
			}
			for _, v := range []int{2, 3} {
				if _, err := VPP(p, v, n, nil); err != nil {
					t.Errorf("VPP(%d,%d,%d): %v", p, v, n, err)
				}
			}
			if _, err := Hanayo(p, n, nil); err != nil {
				t.Errorf("Hanayo(%d,%d): %v", p, n, err)
			}
			if _, err := ZBV(p, n, nil); err != nil {
				t.Errorf("ZBV(%d,%d): %v", p, n, err)
			}
			for _, s := range []int{2, 4} {
				if _, err := TeraPipe(p, s, n, nil); err != nil {
					t.Errorf("TeraPipe(%d,%d,%d): %v", p, s, n, err)
				}
			}
		}
	}
}

// TestSVPPPropertyValid is the core property test: for random shapes and
// memory knobs, SVPP generation must always succeed and produce a complete,
// deadlock-free schedule (Generate validates internally) in every mode
// combination.
func TestSVPPPropertyValid(t *testing.T) {
	type shape struct {
		P, V, S, N, F uint8
		Resched       bool
		Split         bool
		Pieces        uint8
	}
	check := func(sh shape) bool {
		p := int(sh.P)%6 + 1
		v := int(sh.V)%3 + 1
		s := int(sh.S)%4 + 1
		n := int(sh.N)%6 + 1
		f := int(sh.F) % (v*s*p + 2) // may be under the v·s minimum: must clamp
		pieces := 0
		if sh.Split {
			pieces = int(sh.Pieces)%4 + 1
		}
		sch, err := SVPP(SVPPOptions{
			P: p, V: v, S: s, N: n, F: f,
			Reschedule: sh.Resched, Split: sh.Split, FineGrainedW: pieces,
		})
		if err != nil {
			t.Logf("SVPP(p=%d v=%d s=%d n=%d f=%d split=%v pieces=%d): %v",
				p, v, s, n, f, sh.Split, pieces, err)
			return false
		}
		return sch.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestGenerateDurationRobust: schedule generation must stay valid under
// skewed cost estimates (attention imbalance, cheap forwards, heavy
// backwards).
func TestGenerateDurationRobust(t *testing.T) {
	ests := []UniformEst{
		{F: 1, BFused: 1, BAct: 1, W: 1, WPiece: 1},
		{F: 1, BFused: 3, BAct: 2, W: 0.5, WPiece: 0.1, Comm: 0.3},
		{F: 0.25, BFused: 2, BAct: 1, W: 1, WPiece: 0.25, Comm: 0.05},
	}
	for i, est := range ests {
		if _, err := SVPP(SVPPOptions{P: 4, V: 2, S: 2, N: 4, Est: est}); err != nil {
			t.Errorf("est %d fused: %v", i, err)
		}
		if _, err := SVPP(SVPPOptions{P: 4, V: 2, S: 2, N: 4, Est: est, Split: true, FineGrainedW: 3}); err != nil {
			t.Errorf("est %d split: %v", i, err)
		}
	}
}

// skewEst gives each slice a different forward cost, mimicking causal
// attention imbalance (§5's motivating scenario: slice 0 at 75% of slice 1).
type skewEst struct{}

func (skewEst) OpTime(stage int, op Op) float64 {
	base := 0.75 + 0.25*float64(op.Slice)
	switch op.Kind {
	case F:
		return base
	case B:
		return 2 * base
	case BAct:
		return base
	case W, WPiece:
		return 0.75
	}
	return 0
}
func (skewEst) CommTime(from, to int, op Op) float64 { return 0.02 }

func TestGenerateWithImbalancedSlices(t *testing.T) {
	s, err := SVPP(SVPPOptions{P: 4, V: 1, S: 2, N: 4, Est: skewEst{}, Split: true, FineGrainedW: 4, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTightCapsClampedNotDeadlocked: caps below the v·s minimum must be
// raised, never deadlock.
func TestTightCapsClampedNotDeadlocked(t *testing.T) {
	for f := 0; f <= 4; f++ {
		if _, err := SVPP(SVPPOptions{P: 4, V: 2, S: 2, N: 3, F: f}); err != nil {
			t.Errorf("f=%d: %v", f, err)
		}
	}
}

// TestWDeferCapForcesPromptW: with a zero deferral budget every BAct must be
// followed immediately by its weight-gradient work.
func TestWDeferCapForcesPromptW(t *testing.T) {
	s, err := SVPP(SVPPOptions{
		P: 2, V: 1, S: 1, N: 4, Split: true,
		WDeferCap: func(int) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, ops := range s.Stages {
		for i, op := range ops {
			if op.Kind == BAct {
				if i+1 >= len(ops) || ops[i+1].Kind != W {
					t.Fatalf("stage %d: BAct at %d not followed by W: %v", k, i, ops)
				}
			}
		}
	}
}

func TestGPipeOrderAllFThenB(t *testing.T) {
	s, err := GPipe(3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, ops := range s.Stages {
		seenB := false
		for _, op := range ops {
			if op.Kind == B {
				seenB = true
			} else if seenB {
				t.Fatalf("stage %d: forward after backward in GPipe order", k)
			}
		}
	}
}

func TestMEPipePieceCount(t *testing.T) {
	s, err := MEPipe(2, 1, 2, 2, 0, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.WPieces != 7 {
		t.Fatalf("WPieces = %d, want 7", s.WPieces)
	}
	wantOps := 2 * 2 * (2 + 7) // n·s families × (F + BAct + 7 pieces)
	if got := len(s.Stages[0]); got != wantOps {
		t.Fatalf("stage 0 has %d ops, want %d", got, wantOps)
	}
}
