package sched_test

import (
	"bytes"
	"strings"
	"testing"

	"mepipe/internal/sched"
	"mepipe/internal/verify"
)

// FuzzLoad hardens the schedule decoder: arbitrary bytes must never panic,
// and anything that loads must validate.
func FuzzLoad(f *testing.F) {
	// Seed with a real schedule and some near-misses.
	s, err := sched.MEPipe(2, 1, 2, 2, 0, 2, nil)
	if err != nil {
		f.Fatal(err)
	}
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(buf.String()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"placement":"round-robin","p":1,"v":1,"s":1,"n":1,"stages":[[]]}`))
	f.Add([]byte(strings.Replace(buf.String(), `"n":2`, `"n":99`, 1)))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := sched.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Load returned an invalid schedule: %v", err)
		}
	})
}

// FuzzGenerateShapes drives the generator across arbitrary small shapes and
// cap functions: it must either error cleanly or emit a schedule that both
// validates and passes static certification (deadlock-free, complete).
func FuzzGenerateShapes(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(2), uint8(3), uint8(5), true, true, uint8(3))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), false, false, uint8(0))
	f.Add(uint8(6), uint8(3), uint8(4), uint8(6), uint8(2), true, false, uint8(0))
	f.Fuzz(func(t *testing.T, p, v, s, n, fcap uint8, split, resched bool, pieces uint8) {
		opt := sched.GenOptions{
			Name: "fuzz",
			P:    int(p%6) + 1, V: int(v%3) + 1, S: int(s%4) + 1, N: int(n%5) + 1,
			SplitBW:    split,
			Reschedule: resched,
		}
		if split {
			opt.WPieces = int(pieces % 5)
		}
		cap := int(fcap)
		opt.InFlightCap = func(k int) int { return cap - k }
		opt.Place = sched.RoundRobin{P: opt.P, V: opt.V}
		sch, err := sched.Generate(opt)
		if err != nil {
			t.Fatalf("generator failed on p=%d v=%d s=%d n=%d cap=%d: %v", opt.P, opt.V, opt.S, opt.N, cap, err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := verify.Certify(sch, verify.Options{}); err != nil {
			t.Fatalf("generator emitted an uncertifiable schedule on p=%d v=%d s=%d n=%d cap=%d: %v",
				opt.P, opt.V, opt.S, opt.N, cap, err)
		}
	})
}
