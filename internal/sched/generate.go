package sched

import (
	"fmt"
	"math"
	"sync"

	"mepipe/internal/errs"
)

// Estimator supplies the relative durations the generator uses to order
// operations. Generation needs only *relative* costs (which op finishes
// first); the simulator later replays the order against exact costs.
type Estimator interface {
	// OpTime returns the duration of op on stage.
	OpTime(stage int, op Op) float64
	// CommTime returns the delay for op's output to become usable by a
	// dependent on another stage.
	CommTime(from, to int, op Op) float64
}

// UniformEst is the unit-cost estimator used for analytic comparisons:
// every forward costs F, every fused backward B, and so on, regardless of
// slice (no attention imbalance) with a fixed per-hop communication delay.
type UniformEst struct {
	F, BFused, BAct, W, WPiece, Comm float64
}

// Unit returns the conventional unit-cost estimator (B = 2F, split halves
// B into equal act/weight parts).
func Unit() UniformEst {
	return UniformEst{F: 1, BFused: 2, BAct: 1, W: 1, WPiece: 0, Comm: 0}
}

func (u UniformEst) OpTime(stage int, op Op) float64 {
	switch op.Kind {
	case F:
		return u.F
	case B:
		return u.BFused
	case BAct:
		return u.BAct
	case W:
		return u.W
	case WPiece:
		return u.WPiece
	}
	return 0
}

func (u UniformEst) CommTime(from, to int, op Op) float64 { return u.Comm }

// MicroInvariantCosts implements MicroInvariant: uniform costs read only
// the op kind.
func (u UniformEst) MicroInvariantCosts() bool { return true }

// MicroInvariant is an optional capability of cost models: a model
// returning true promises that OpTime, CommTime, and any per-op byte
// queries ignore Op.Micro entirely (every micro-batch of a family costs
// the same, bitwise). The generator and the simulator sessions then query
// only the micro-0 twin of each op and copy the value — an exact
// optimization, since the model vouches the twin's result IS the op's
// result. Models that cannot promise this simply don't implement the
// interface and keep the per-op path.
type MicroInvariant interface {
	MicroInvariantCosts() bool
}

// GenOptions parameterises the greedy event-driven generator. The same
// machinery produces every schedule family:
//
//	GPipe     cap=∞, fused B
//	TeraPipe  cap=∞, fused B, S>1
//	DAPPLE    cap(k)=P−k, fused B
//	VPP       cap(k)=VP+P−1−k, round-robin placement, fused B
//	Hanayo    wave placement, fused B
//	ZB-1P     DAPPLE caps, split B, whole W gap-filling
//	ZBV       wave placement, split B
//	SVPP      S>1, cap(k)=f−k with f the §4.2 memory knob
//	MEPipe    SVPP + split B + WPiece gap-filling (§5)
type GenOptions struct {
	Name string

	P, V, S, N int
	Place      Placement

	SplitBW bool
	// WPieces decomposes each weight-gradient op into this many GEMM
	// pieces (§5). 0 with SplitBW schedules whole W ops.
	WPieces int

	// InFlightCap bounds, per stage, the number of forward families whose
	// backward has not yet been scheduled — the f knob of §4.2. The
	// generator always reserves headroom for the oldest live micro-batch
	// so the cap can never deadlock the pipeline; caps below V·S are
	// raised to V·S (the theoretical minimum, §4.2).
	InFlightCap func(stage int) int

	// WDeferCap bounds, per stage, how many weight-gradient ops may be
	// outstanding (BAct done, W not). Exceeding it forces the next op to
	// be a W: this is how later stages are allowed to defer more W than
	// stage 0 (§5). Negative means unlimited.
	WDeferCap func(stage int) int

	// Reschedule enables the Fig-6 backward rescheduling: among ready
	// backwards, prefer the one with the most descendants.
	Reschedule bool

	Est Estimator
}

// node tracks generator state for one op on one stage. Dependents live in
// the generator's shared CSR table (outOff/outID), not per-node slices.
type node struct {
	op        Op
	dur       float64
	remaining int     // unscheduled dependencies
	ready     float64 // max(dep finish + comm) once remaining == 0
	scheduled bool
}

type genStage struct {
	free     float64
	inflight int
	deferred int // outstanding W families (split mode)
	// ready op ids by class. readyF/readyB are scanned in full (their
	// sizes are bounded by the in-flight caps or the pipeline width);
	// readyW is kept sorted by fPriority with an advancing head, because
	// a ready weight-gradient op's only dependency (its same-stage BAct)
	// has always already executed — every entry starts at st.free, so
	// the priority-sorted head IS the best candidate.
	readyF, readyB []int32
	readyW         []int32
	wHead          int
	// cached pick() result, recomputed only when the stage's state
	// changed since the last decision (dirty).
	cached candidate
	dirty  bool
	// bookkeeping for the oldest-micro headroom rule
	unschedF []int // per micro: unscheduled F ops on this stage
	unschedB []int // per micro: unscheduled B-class ops on this stage
	oldest   int   // smallest micro with unscheduled B ops
	pending  int
	order    []Op
}

// Generate builds a schedule per opt. The returned schedule is valid by
// construction (see the proof note at the end of the function); callers
// binding schedules from any other source should run Validate or
// verify.Certify themselves.
func Generate(opt GenOptions) (*Schedule, error) {
	s := &Schedule{
		Name: opt.Name, P: opt.P, V: opt.V, S: opt.S, N: opt.N,
		SplitBW: opt.SplitBW, WPieces: opt.WPieces, Place: opt.Place,
	}
	if s.Place == nil {
		s.Place = RoundRobin{P: opt.P, V: opt.V}
	}
	if opt.Est == nil {
		opt.Est = Unit()
	}
	if opt.P <= 0 || opt.V <= 0 || opt.S <= 0 || opt.N <= 0 {
		return nil, fmt.Errorf("sched: generate %s: non-positive shape p=%d v=%d s=%d n=%d: %w", opt.Name, opt.P, opt.V, opt.S, opt.N, errs.ErrIncompatible)
	}
	g := genPool.Get().(*generator)
	g.reset(s, opt)
	err := g.run()
	if err == nil {
		// The event-driven run is a constructive validity proof, so no
		// Validate pass is needed: an op commits only after every dependency
		// has already committed, and stage order is commit order, so every
		// program-order and data edge points forward in commit time — the
		// certification graph is acyclic by construction. Each op commits at
		// most once (the scheduled flag) and the run ends only at done ==
		// total, so each stage holds its complete op universe with no
		// duplicates. The per-stage count below is the only part of
		// well-formedness the loop invariants don't pin down structurally;
		// consumers that accept schedules from outside the generator
		// (deserialization, hand-built tables) still run Validate or
		// verify.Certify themselves.
		for k := range g.stages {
			if g.stages[k].pending != 0 || len(g.stages[k].order) != g.x.perStage {
				err = fmt.Errorf("sched: generator produced invalid schedule: stage %d has %d ops, want %d: %w",
					k, len(g.stages[k].order), g.x.perStage, errs.ErrUncertified)
				break
			}
		}
	}
	if err == nil {
		for k := range g.stages {
			s.Stages = append(s.Stages, g.stages[k].order)
			g.stages[k].order = nil // handed to the schedule; never reused
		}
	}
	// Drop references the pool must not retain (estimator, placement,
	// schedule, dependency table) and recycle the arenas.
	g.s, g.opt, g.dt = nil, GenOptions{}, nil
	genPool.Put(g)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// genPool recycles generator arenas across Generate calls: the node,
// finish, and dependents-CSR tables dominate generation's allocation
// profile, and sweep workers generate dozens of schedules back to back.
var genPool = sync.Pool{New: func() any { return new(generator) }}

// sgrow returns s resized to n elements, reusing capacity when it can.
// Contents are NOT cleared — reset overwrites every element it reads.
func sgrow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

type generator struct {
	s      *Schedule
	opt    GenOptions
	x      opIndexer
	nodes  []node
	stages []genStage
	finish []float64
	// dt is the schedule's cached dependency table; its dependents CSR
	// (OutID rows in increasing id order, the order the old per-node
	// append produced) is the generator's wake list, so wake order — and
	// with it every downstream tie-break — is unchanged.
	dt    *DepTable
	total int
	done  int
}

// reset (re)initializes the generator for s, reusing pooled arenas. Every
// element of every reused array is overwritten here or append-built, so no
// clearing pass is needed beyond the counting tables.
func (g *generator) reset(s *Schedule, opt GenOptions) {
	g.s, g.opt, g.x = s, opt, s.indexer()
	// Build the op universe. Ids follow the indexer's arithmetic
	// enumeration (stage, micro, chunk, slice, family slot) — the same
	// order the map-based build appended ops in.
	total := g.x.total()
	g.total, g.done = total, 0
	g.nodes = sgrow(g.nodes, total)
	g.finish = sgrow(g.finish, total)
	g.stages = sgrow(g.stages, s.P)
	for k := 0; k < s.P; k++ {
		st := &g.stages[k]
		st.free, st.inflight, st.deferred = 0, 0, 0
		st.readyF = st.readyF[:0]
		st.readyB = st.readyB[:0]
		st.readyW = st.readyW[:0]
		st.wHead = 0
		st.cached = candidate{}
		st.dirty = false
		st.unschedF = sgrow(st.unschedF, s.N)
		st.unschedB = sgrow(st.unschedB, s.N)
		for m := 0; m < s.N; m++ {
			st.unschedF[m] = s.V * s.S
			st.unschedB[m] = s.V * s.S
		}
		st.oldest = 0
		st.pending = g.x.perStage
		// The order list escapes into the returned Schedule, so it is the
		// one array the pool never reuses.
		st.order = make([]Op, 0, g.x.perStage)
	}
	// Decode every op and seed its dependency count. The dense dependency
	// table — built here once, cached on the schedule — is what the
	// certifier and the simulator sessions will reuse, so every Dep of
	// this schedule is derived and indexed exactly once across the whole
	// generate → certify → bind path; its dependents CSR doubles as the
	// generator's wake list. Micro-invariant estimators (see
	// MicroInvariant) are queried only for the micro-0 twin of each op —
	// the copies are bitwise, so no generated byte changes.
	t := s.DepTable()
	g.dt = t
	vss := g.x.perStage / g.x.n
	microInv := false
	if mi, ok := opt.Est.(MicroInvariant); ok {
		microInv = mi.MicroInvariantCosts()
	}
	for id := 0; id < total; id++ {
		stage, op := g.x.opAt(int32(id))
		n := &g.nodes[id]
		n.op = op
		if microInv && op.Micro > 0 {
			n.dur = g.nodes[id-op.Micro*vss].dur
		} else {
			n.dur = opt.Est.OpTime(stage, op)
		}
		n.remaining = int(t.Off[id+1] - t.Off[id])
		n.ready = 0
		n.scheduled = false
		g.finish[id] = 0
	}
	// Seed ready lists.
	for id := range g.nodes {
		if g.nodes[id].remaining == 0 {
			g.markReady(int32(id), g.x.stage(int32(id)))
		}
	}
}

func (g *generator) markReady(id int32, stage int) {
	st := &g.stages[stage]
	st.dirty = true
	switch g.nodes[id].op.Kind {
	case F:
		st.readyF = append(st.readyF, id)
	case B, BAct:
		st.readyB = append(st.readyB, id)
	default:
		g.insertW(st, id)
	}
}

// insertW keeps readyW[wHead:] sorted by fPriority. Weight-gradient work is
// enqueued in nearly increasing priority order (families complete their
// BAct in roughly micro order), so the binary search almost always appends.
func (g *generator) insertW(st *genStage, id int32) {
	key := fPriority(g.nodes[id].op)
	lo, hi := st.wHead, len(st.readyW)
	for lo < hi {
		mid := (lo + hi) / 2
		if less4(fPriority(g.nodes[st.readyW[mid]].op), key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	st.readyW = append(st.readyW, 0)
	copy(st.readyW[lo+1:], st.readyW[lo:])
	st.readyW[lo] = id
}

func (g *generator) cap(stage int) int {
	c := math.MaxInt
	if g.opt.InFlightCap != nil {
		c = g.opt.InFlightCap(stage)
	}
	if min := g.s.V * g.s.S; c < min {
		c = min
	}
	return c
}

func (g *generator) wCap(stage int) int {
	if g.opt.WDeferCap == nil {
		return math.MaxInt
	}
	c := g.opt.WDeferCap(stage)
	if c < 0 {
		return math.MaxInt
	}
	return c
}

// bPriority returns a sort key (smaller = preferred) among ready backwards.
func (g *generator) bPriority(stage int, op Op) [4]int {
	gl := g.s.Place.Global(stage, op.Chunk)
	if g.opt.Reschedule {
		// Fig 6: prefer the backward with the most descendants —
		// (slice+1)·(globalChunk+1)−1 backwards transitively depend
		// on it.
		desc := (op.Slice + 1) * (gl + 1)
		return [4]int{-desc, op.Micro, 0, 0}
	}
	return [4]int{op.Micro, -gl, -op.Slice, 0}
}

func fPriority(op Op) [4]int { return [4]int{op.Micro, op.Chunk, op.Slice, op.Piece} }

func less4(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

type candidate struct {
	id    int32
	start float64
	kind  Kind
	ok    bool
}

const timeEps = 1e-9

// chooseF picks the best eligible forward for a stage.
//
// Eligibility keeps the cap from starving the critical chain: a backward of
// micro m runs only after ALL of m's forwards ran on this stage (each later
// chunk transitively revisits the stage), so a forward of a younger micro is
// admitted only if headroom remains for the oldest live micro's unscheduled
// forwards. This matches the hand-written Megatron/MEPipe orders; the rare
// shapes it cannot protect (deep virtual pipelines under aggressive memory
// knobs, where the oldest micro changes while younger ones hold capacity)
// are handled by the stall-recovery path in run.
func (g *generator) chooseF(k int) candidate {
	st := &g.stages[k]
	limit := g.cap(k)
	reserve := 0
	if st.oldest < g.s.N {
		reserve = st.unschedF[st.oldest]
	}
	best := candidate{}
	for _, id := range st.readyF {
		op := g.nodes[id].op
		need := st.inflight
		if op.Micro != st.oldest {
			need += reserve
		}
		if need >= limit {
			continue
		}
		start := max(st.free, g.nodes[id].ready)
		if !best.ok || start < best.start-timeEps ||
			(start < best.start+timeEps && less4(fPriority(op), fPriority(g.nodes[best.id].op))) {
			best = candidate{id: id, start: start, kind: F, ok: true}
		}
	}
	return best
}

func (g *generator) chooseB(k int) candidate {
	st := &g.stages[k]
	best := candidate{}
	for _, id := range st.readyB {
		op := g.nodes[id].op
		start := max(st.free, g.nodes[id].ready)
		if !best.ok || start < best.start-timeEps ||
			(start < best.start+timeEps && less4(g.bPriority(k, op), g.bPriority(k, g.nodes[best.id].op))) {
			best = candidate{id: id, start: start, kind: op.Kind, ok: true}
		}
	}
	return best
}

func (g *generator) chooseW(k int) candidate {
	st := &g.stages[k]
	if st.wHead >= len(st.readyW) {
		return candidate{}
	}
	id := st.readyW[st.wHead]
	op := g.nodes[id].op
	start := max(st.free, g.nodes[id].ready)
	return candidate{id: id, start: start, kind: op.Kind, ok: true}
}

func (g *generator) run() error {
	for k := range g.stages {
		g.stages[k].dirty = true
	}
	for g.done < g.total {
		bestStage := -1
		var best candidate
		for k := 0; k < g.s.P; k++ {
			st := &g.stages[k]
			if st.pending == 0 {
				continue
			}
			if st.dirty {
				st.cached = g.pick(k)
				st.dirty = false
			}
			c := st.cached
			if !c.ok {
				continue
			}
			if bestStage < 0 || c.start < best.start-timeEps {
				bestStage, best = k, c
			}
		}
		if bestStage < 0 {
			// Global stall: every stage is either empty, at its cap,
			// or waiting on another stage. Force the critical chain
			// through — run a ready forward of some stage's oldest
			// live micro-batch even though the stage is at its cap.
			// This momentarily exceeds the memory knob but is the
			// only way the oldest micro's backward (which frees the
			// capacity) can ever become runnable. It triggers only
			// for deep virtual pipelines under aggressive memory
			// limits, never for the paper's configurations.
			bestStage, best = g.forceProgress()
			if bestStage < 0 {
				return fmt.Errorf("sched: generate %s: deadlocked with %d/%d ops scheduled: %w\n%s", g.s, g.done, g.total, errs.ErrUncertified, g.dumpStall())
			}
		}
		g.commit(bestStage, best)
	}
	return nil
}

// forceProgress picks a cap-exempt forward for stall recovery: the ready
// forward of a stage's oldest live micro with the earliest possible start
// (preferring, among ties, the oldest micro globally).
func (g *generator) forceProgress() (int, candidate) {
	bestStage := -1
	var best candidate
	for k := 0; k < g.s.P; k++ {
		st := &g.stages[k]
		for _, id := range st.readyF {
			op := g.nodes[id].op
			if op.Micro != st.oldest {
				continue
			}
			start := max(st.free, g.nodes[id].ready)
			c := candidate{id: id, start: start, kind: F, ok: true}
			if bestStage < 0 || c.start < best.start-timeEps ||
				(c.start < best.start+timeEps && op.Micro < g.nodes[best.id].op.Micro) {
				bestStage, best = k, c
			}
		}
	}
	return bestStage, best
}

func (g *generator) dumpStall() string {
	out := ""
	for k := range g.stages {
		st := &g.stages[k]
		out += fmt.Sprintf("stage %d: pending=%d inflight=%d cap=%d oldest=m%d readyF=[", k, st.pending, st.inflight, g.cap(k), st.oldest)
		for _, id := range st.readyF {
			out += g.nodes[id].op.String() + " "
		}
		out += "] readyB=["
		for _, id := range st.readyB {
			out += g.nodes[id].op.String() + " "
		}
		out += fmt.Sprintf("] unschedF(oldest)=%d\n", st.unschedF[min(st.oldest, g.s.N-1)])
	}
	return out
}

// pick selects the next op for stage k per the policy.
func (g *generator) pick(k int) candidate {
	st := &g.stages[k]
	// Forced weight gradients: too many deferred.
	if g.s.SplitBW && st.deferred >= g.wCap(k) {
		if c := g.chooseW(k); c.ok {
			return c
		}
	}
	cf := g.chooseF(k)
	cb := g.chooseB(k)
	var main candidate
	switch {
	case cf.ok && cb.ok:
		if cf.start <= cb.start+timeEps {
			main = cf
		} else {
			main = cb
		}
	case cf.ok:
		main = cf
	case cb.ok:
		main = cb
	}
	if !g.s.SplitBW {
		return main
	}
	cw := g.chooseW(k)
	if !cw.ok {
		return main
	}
	if !main.ok {
		return cw
	}
	// Gap filling (§5 / zero-bubble): run a weight-gradient op only when
	// it completes before the main candidate could start anyway.
	if cw.start+g.nodes[cw.id].dur <= main.start+timeEps {
		return cw
	}
	return main
}

func (g *generator) commit(k int, c candidate) {
	st := &g.stages[k]
	st.dirty = true
	n := &g.nodes[c.id]
	n.scheduled = true
	fin := c.start + n.dur
	g.finish[c.id] = fin
	st.free = fin
	st.order = append(st.order, n.op)
	st.pending--
	g.done++
	switch n.op.Kind {
	case F:
		st.inflight++
		st.unschedF[n.op.Micro]--
		st.readyF = removeID(st.readyF, c.id)
	case B, BAct:
		st.inflight--
		st.unschedB[n.op.Micro]--
		if g.s.SplitBW {
			if g.s.WPieces > 0 {
				st.deferred += g.s.WPieces
			} else {
				st.deferred++
			}
		}
		if n.op.Micro == st.oldest && st.unschedB[n.op.Micro] == 0 {
			for st.oldest < g.s.N && st.unschedB[st.oldest] == 0 {
				st.oldest++
			}
		}
		st.readyB = removeID(st.readyB, c.id)
	case W, WPiece:
		st.deferred--
		// chooseW only ever proposes the head.
		if st.wHead >= len(st.readyW) || st.readyW[st.wHead] != c.id {
			panic("sched: generator committed a non-head weight-gradient op")
		}
		st.wHead++
		if st.wHead == len(st.readyW) {
			st.readyW = st.readyW[:0]
			st.wHead = 0
		}
	}
	// Wake dependents.
	for e := g.dt.OutOff[c.id]; e < g.dt.OutOff[c.id+1]; e++ {
		dep := g.dt.OutID[e]
		d := &g.nodes[dep]
		ds := g.x.stage(dep)
		t := fin
		if ds != k {
			t += g.opt.Est.CommTime(k, ds, n.op)
		}
		if t > d.ready {
			d.ready = t
		}
		d.remaining--
		if d.remaining == 0 {
			g.markReady(dep, ds)
		}
	}
}

func removeID(s []int32, id int32) []int32 {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
