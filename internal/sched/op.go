// Package sched defines the pipeline-schedule intermediate representation
// and the schedule generators for every system the paper evaluates: GPipe,
// DAPPLE (1F1B), virtual pipeline parallelism (VPP), Hanayo-style wave
// scheduling, TeraPipe (sequence pipeline parallelism), zero-bubble (ZB-1P,
// ZBV), and the paper's contribution, SVPP — sequence virtual pipeline
// parallelism with memory-limited variants and backward rescheduling.
//
// A schedule is an *order*, not a timetable: each pipeline stage carries an
// ordered list of typed operations, and execution times emerge from
// dependencies (in the discrete-event simulator) or from actual computation
// (in the goroutine runtime). The explicit "bubbles" of the paper's figures
// are the stalls this ordering induces.
package sched

import "fmt"

// Kind identifies the operation class.
type Kind uint8

const (
	// F is a forward pass of one slice of one micro-batch through the
	// layers of one model chunk.
	F Kind = iota
	// B is a fused backward pass (activation and weight gradients
	// together), as run by GPipe, DAPPLE, VPP, Hanayo and TeraPipe.
	B
	// BAct is the activation-gradient half of a split backward pass
	// (zero-bubble style, also used by MEPipe).
	BAct
	// W is the weight-gradient half of a split backward pass at whole-op
	// granularity (ZB-1P / ZBV).
	W
	// WPiece is a single weight-gradient GEMM (§5 fine-grained
	// decomposition). Op.Piece selects which GEMM.
	WPiece
)

// String returns the compact mnemonic used in rendered timelines.
func (k Kind) String() string {
	switch k {
	case F:
		return "F"
	case B:
		return "B"
	case BAct:
		return "b"
	case W:
		return "W"
	case WPiece:
		return "w"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one unit of scheduled work on a stage.
type Op struct {
	Kind  Kind
	Micro int // micro-batch index, 0-based
	Slice int // slice index within the micro-batch (0 for non-SPP systems)
	Chunk int // local model-chunk index on this stage (0 for VP=1)
	Piece int // W-GEMM piece index for WPiece, else 0
}

// Key returns the op's identity without the Piece field, so the activation
// lifetime of an (F, BAct, W…) family can be tracked as one unit.
func (o Op) Key() Op { k := o; k.Piece = 0; k.Kind = F; return k }

func (o Op) String() string {
	if o.Kind == WPiece {
		return fmt.Sprintf("%s[m%d s%d c%d p%d]", o.Kind, o.Micro, o.Slice, o.Chunk, o.Piece)
	}
	return fmt.Sprintf("%s[m%d s%d c%d]", o.Kind, o.Micro, o.Slice, o.Chunk)
}

// Placement maps model chunks to pipeline stages. Global chunk g is the g-th
// group of consecutive layers; the forward pass visits chunks 0..PV-1 in
// order, the backward pass in reverse.
type Placement interface {
	// Host returns the stage and local chunk index hosting global chunk g.
	Host(g int) (stage, local int)
	// Global returns the global chunk index of (stage, local).
	Global(stage, local int) int
	// Stages and ChunksPerStage describe the shape.
	Stages() int
	ChunksPerStage() int
}

// RoundRobin places global chunk g on stage g mod p — the Megatron-LM
// interleaved layout (Fig 4(b) of the paper).
type RoundRobin struct{ P, V int }

func (r RoundRobin) Host(g int) (int, int)   { return g % r.P, g / r.P }
func (r RoundRobin) Global(stage, l int) int { return l*r.P + stage }
func (r RoundRobin) Stages() int             { return r.P }
func (r RoundRobin) ChunksPerStage() int     { return r.V }

// Wave places chunks in a V shape for v = 2: stage k hosts global chunks k
// and 2p−1−k, so the forward wave bounces off the last stage and returns —
// the Hanayo / ZBV layout.
type Wave struct{ P int }

func (w Wave) Host(g int) (int, int) {
	if g < w.P {
		return g, 0
	}
	return 2*w.P - 1 - g, 1
}
func (w Wave) Global(stage, l int) int {
	if l == 0 {
		return stage
	}
	return 2*w.P - 1 - stage
}
func (w Wave) Stages() int         { return w.P }
func (w Wave) ChunksPerStage() int { return 2 }

// Schedule is a complete per-iteration pipeline program.
type Schedule struct {
	Name string

	P int // pipeline stages
	V int // chunks per stage (virtual pipeline size)
	S int // slices per micro-batch (sequence pipeline size)
	N int // micro-batches

	// SplitBW records whether backward passes are split into BAct + W
	// (zero-bubble style). Fused-B schedules contain only F and B ops.
	SplitBW bool
	// WPieces is the number of WPiece GEMMs each weight-gradient op is
	// decomposed into (0 when W is scheduled whole or B is fused).
	WPieces int

	Place Placement

	// Stages[k] is the ordered op list of stage k.
	Stages [][]Op

	// depTab caches the dense dependency table (see DepTable); it is a
	// pure function of the shape and placement, not of Stages.
	depTab *DepTable
}

// TotalChunks returns P·V, the number of global model chunks.
func (s *Schedule) TotalChunks() int { return s.P * s.V }

// OpsPerStage returns the expected op count per stage given the schedule's
// shape, used by validation.
func (s *Schedule) OpsPerStage() int {
	fb := s.N * s.S * s.V // forwards
	if !s.SplitBW {
		return 2 * fb
	}
	if s.WPieces > 0 {
		return fb * (2 + s.WPieces)
	}
	return 3 * fb
}

func (s *Schedule) String() string {
	return fmt.Sprintf("%s{p=%d v=%d s=%d n=%d split=%v}", s.Name, s.P, s.V, s.S, s.N, s.SplitBW)
}
