package sched

// Preset constructors for every scheduling system the paper evaluates.
// Each returns a Schedule valid by construction (see Generate); est may be
// nil for unit costs. The XxxOpts companions expose the exact generator
// configuration each preset uses, so alternative generators (notably the
// frozen pre-sweep GenerateReference) can build the same schedules from
// one source of truth.

// GPipeOpts is the generator configuration of GPipe.
func GPipeOpts(p, n int, est Estimator) GenOptions {
	return GenOptions{Name: "GPipe", P: p, V: 1, S: 1, N: n, Est: est}
}

// GPipe schedules all forwards then all backwards (§2.1).
func GPipe(p, n int, est Estimator) (*Schedule, error) {
	return Generate(GPipeOpts(p, n, est))
}

// DAPPLEOpts is the generator configuration of DAPPLE.
func DAPPLEOpts(p, n int, est Estimator) GenOptions {
	return GenOptions{
		Name: "DAPPLE", P: p, V: 1, S: 1, N: n, Est: est,
		InFlightCap: func(k int) int { return p - k },
	}
}

// DAPPLE is the 1F1B schedule of Fig 2: stage k admits at most p−k
// micro-batches before alternating one-forward-one-backward.
func DAPPLE(p, n int, est Estimator) (*Schedule, error) {
	return Generate(DAPPLEOpts(p, n, est))
}

// VPPOpts is the generator configuration of VPP.
func VPPOpts(p, v, n int, est Estimator) GenOptions {
	return GenOptions{
		Name: "VPP", P: p, V: v, S: 1, N: n, Est: est,
		Place:       RoundRobin{P: p, V: v},
		InFlightCap: func(k int) int { return v*p + p - 1 - k },
		// Megatron's hand-written interleaved order drains backward
		// chunks in dependency-priority order; the reschedule policy
		// reproduces it (and the Table 3 bubble ratio) exactly.
		Reschedule: true,
	}
}

// VPP is Megatron-LM interleaved virtual pipeline parallelism: v chunks per
// stage in round-robin placement; stage k holds at most vp+p−1−k in-flight
// chunk-forwards (Table 3's memory row).
func VPP(p, v, n int, est Estimator) (*Schedule, error) {
	return Generate(VPPOpts(p, v, n, est))
}

// HanayoOpts is the generator configuration of Hanayo.
func HanayoOpts(p, n int, est Estimator) GenOptions {
	return GenOptions{
		Name: "Hanayo", P: p, V: 2, S: 1, N: n, Est: est,
		Place:       Wave{P: p},
		InFlightCap: func(k int) int { return 2*p + p - 1 - k },
		Reschedule:  true,
	}
}

// Hanayo is the wave-style schedule: two chunks per stage in V placement, so
// the forward wave reflects off the last stage.
//
// The greedy generator reproduces the wave's memory behaviour but paces the
// steady state more loosely than Hanayo's hand-crafted order (the backward
// of a sample costs the first stage two widely separated ops under the V
// placement). The evaluation harness therefore uses Hanayo through its
// analytic Table 3 row, like the paper, and keeps this generator for
// validation and timeline inspection.
func Hanayo(p, n int, est Estimator) (*Schedule, error) {
	return Generate(HanayoOpts(p, n, est))
}

// TeraPipeOpts is the generator configuration of TeraPipe.
func TeraPipeOpts(p, s, n int, est Estimator) GenOptions {
	return GenOptions{Name: "TeraPipe", P: p, V: 1, S: s, N: n, Est: est}
}

// TeraPipe is sequence pipeline parallelism with GPipe-style scheduling
// (Fig 3): slices flow through unconstrained, so every stage retains the
// activations of all n·s slices before the first backward.
func TeraPipe(p, s, n int, est Estimator) (*Schedule, error) {
	return Generate(TeraPipeOpts(p, s, n, est))
}

// ZB1POpts is the generator configuration of ZB1P.
func ZB1POpts(p, n int, est Estimator) GenOptions {
	return GenOptions{
		Name: "ZB-1P", P: p, V: 1, S: 1, N: n, Est: est, SplitBW: true,
		InFlightCap: func(k int) int { return p - k },
		WDeferCap:   func(k int) int { return p - k },
	}
}

// ZB1P is zero-bubble pipeline parallelism over the DAPPLE skeleton:
// backwards are split, activation gradients keep 1F1B pacing, and weight
// gradients fill stalls — later stages may defer more of them, letting the
// tail bubbles absorb the deferred work (§2.1). The deferral bound keeps
// memory within one extra micro-batch of DAPPLE per deferred W, mirroring
// ZB-1P's "same memory as 1F1B" design point.
func ZB1P(p, n int, est Estimator) (*Schedule, error) {
	return Generate(ZB1POpts(p, n, est))
}

// ZBVOpts is the generator configuration of ZBV.
func ZBVOpts(p, n int, est Estimator) GenOptions {
	return GenOptions{
		Name: "ZBV", P: p, V: 2, S: 1, N: n, Est: est, SplitBW: true,
		Place:       Wave{P: p},
		InFlightCap: func(k int) int { return 2*p + p - 1 - k },
		WDeferCap:   func(k int) int { return 2 * (p - k) },
		Reschedule:  true,
	}
}

// ZBV is zero-bubble scheduling over the wave (V) placement.
func ZBV(p, n int, est Estimator) (*Schedule, error) {
	return Generate(ZBVOpts(p, n, est))
}

// SVPPOptions selects the paper's scheduling variant.
type SVPPOptions struct {
	P, V, S, N int
	// F is the number of forward passes stage 0 may execute before the
	// first backward (§4.2's memory knob). Zero selects the lowest-bubble
	// variant, f = v·max(p,s) + min(p,s) − 1. Values below the v·s
	// minimum are raised to it.
	F int
	// Reschedule applies the Fig-6 backward rescheduling optimisation.
	Reschedule bool
	// Split enables zero-bubble-style B/W separation; FineGrainedW
	// additionally decomposes each W into this many GEMM pieces (§5).
	Split        bool
	FineGrainedW int
	// WDeferCap optionally bounds deferred weight-gradient ops per stage
	// (pieces count individually). Nil leaves deferral unbounded and lets
	// gap filling place the work.
	WDeferCap func(stage int) int

	Est Estimator
}

// DefaultF returns the bubble-optimal number of in-flight forwards for
// stage 0 (§4.4): v·max(p,s) + min(p,s) − 1.
func DefaultF(p, v, s int) int {
	if s > p {
		return v*s + p - 1
	}
	return v*p + s - 1
}

// GenOpts is the generator configuration SVPP passes to Generate,
// f-defaulting and clamping included.
func (o SVPPOptions) GenOpts() GenOptions {
	f := o.F
	if f <= 0 {
		f = DefaultF(o.P, o.V, o.S)
	}
	if min := o.V * o.S; f < min {
		f = min
	}
	name := "SVPP"
	pieces := 0
	if o.Split {
		name = "MEPipe"
		pieces = o.FineGrainedW
	}
	return GenOptions{
		Name: name, P: o.P, V: o.V, S: o.S, N: o.N, Est: o.Est,
		Place:       RoundRobin{P: o.P, V: o.V},
		SplitBW:     o.Split,
		WPieces:     pieces,
		InFlightCap: func(k int) int { return f - k },
		WDeferCap:   o.WDeferCap,
		Reschedule:  o.Reschedule,
	}
}

// SVPP generates the paper's sequence virtual pipeline parallelism
// schedule. With Split and FineGrainedW it is the full MEPipe schedule.
func SVPP(o SVPPOptions) (*Schedule, error) {
	return Generate(o.GenOpts())
}

// MEPipe is SVPP with split backwards and fine-grained weight-gradient
// pieces — the paper's full system. pieces is the per-op GEMM decomposition
// (7 GEMM groups per layer family; see model.WeightGradGEMMsPerLayer).
func MEPipe(p, v, s, n, f, pieces int, est Estimator) (*Schedule, error) {
	return SVPP(SVPPOptions{
		P: p, V: v, S: s, N: n, F: f,
		Reschedule: true, Split: true, FineGrainedW: pieces, Est: est,
	})
}
