package sched

import (
	"fmt"

	"mepipe/internal/errs"
)

// Validate checks that the schedule is complete and executable:
//
//   - every stage contains exactly the required op multiset — one forward
//     and one backward (fused, or BAct plus W or WPieces) per
//     (micro-batch, slice, local chunk);
//   - the global graph formed by per-stage program order plus data
//     dependencies is acyclic, i.e. sequential workers executing their
//     lists in order can never deadlock.
//
// A nil error means any dependency-respecting executor can run the schedule
// to completion.
func (s *Schedule) Validate() error {
	if s.P <= 0 || s.V <= 0 || s.S <= 0 || s.N <= 0 {
		return fmt.Errorf("sched: %s has non-positive shape: %w", s, errs.ErrIncompatible)
	}
	if len(s.Stages) != s.P {
		return fmt.Errorf("sched: %s has %d stage lists, want %d: %w", s, len(s.Stages), s.P, errs.ErrIncompatible)
	}
	if s.Place == nil {
		return fmt.Errorf("sched: %s has no chunk placement: %w", s, errs.ErrIncompatible)
	}
	if err := s.checkComplete(); err != nil {
		return err
	}
	return s.checkAcyclic()
}

type stageOp struct {
	stage int
	op    Op
}

func (s *Schedule) checkComplete() error {
	for k, ops := range s.Stages {
		seen := make(map[Op]bool, len(ops))
		for _, op := range ops {
			if err := s.checkShape(k, op); err != nil {
				return err
			}
			if seen[op] {
				return fmt.Errorf("sched: %s stage %d: duplicate op %s: %w", s, k, op, errs.ErrIncompatible)
			}
			seen[op] = true
		}
		want := s.OpsPerStage()
		if len(ops) != want {
			return fmt.Errorf("sched: %s stage %d: %d ops, want %d: %w", s, k, len(ops), want, errs.ErrIncompatible)
		}
		// Completeness: every (kind, m, i, j[, piece]) present.
		for m := 0; m < s.N; m++ {
			for i := 0; i < s.S; i++ {
				for j := 0; j < s.V; j++ {
					if err := s.checkFamily(seen, k, m, i, j); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func (s *Schedule) checkShape(stage int, op Op) error {
	if op.Micro < 0 || op.Micro >= s.N || op.Slice < 0 || op.Slice >= s.S || op.Chunk < 0 || op.Chunk >= s.V {
		return fmt.Errorf("sched: %s stage %d: op %s out of range: %w", s, stage, op, errs.ErrIncompatible)
	}
	switch op.Kind {
	case F:
	case B:
		if s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: fused %s in split schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case BAct:
		if !s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: %s in fused schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case W:
		if !s.SplitBW || s.WPieces > 0 {
			return fmt.Errorf("sched: %s stage %d: unexpected whole %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	case WPiece:
		if !s.SplitBW || s.WPieces == 0 || op.Piece < 0 || op.Piece >= s.WPieces {
			return fmt.Errorf("sched: %s stage %d: unexpected %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	default:
		return fmt.Errorf("sched: %s stage %d: unknown kind in %s: %w", s, stage, op, errs.ErrIncompatible)
	}
	return nil
}

func (s *Schedule) checkFamily(seen map[Op]bool, stage, m, i, j int) error {
	need := []Op{{Kind: F, Micro: m, Slice: i, Chunk: j}}
	switch {
	case !s.SplitBW:
		need = append(need, Op{Kind: B, Micro: m, Slice: i, Chunk: j})
	case s.WPieces == 0:
		need = append(need,
			Op{Kind: BAct, Micro: m, Slice: i, Chunk: j},
			Op{Kind: W, Micro: m, Slice: i, Chunk: j})
	default:
		need = append(need, Op{Kind: BAct, Micro: m, Slice: i, Chunk: j})
		for p := 0; p < s.WPieces; p++ {
			need = append(need, Op{Kind: WPiece, Micro: m, Slice: i, Chunk: j, Piece: p})
		}
	}
	for _, op := range need {
		if !seen[op] {
			return fmt.Errorf("sched: %s stage %d: missing op %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm over program-order and data edges.
func (s *Schedule) checkAcyclic() error {
	index := make(map[stageOp]int) // node id
	var nodes []stageOp
	id := func(k int, op Op) int {
		so := stageOp{k, op}
		if i, ok := index[so]; ok {
			return i
		}
		index[so] = len(nodes)
		nodes = append(nodes, so)
		return len(nodes) - 1
	}
	for k, ops := range s.Stages {
		for _, op := range ops {
			id(k, op)
		}
	}
	adj := make([][]int32, len(nodes))
	indeg := make([]int32, len(nodes))
	addEdge := func(from, to int) {
		adj[from] = append(adj[from], int32(to))
		indeg[to]++
	}
	var deps []Dep
	for k, ops := range s.Stages {
		for idx, op := range ops {
			to := id(k, op)
			if idx > 0 {
				addEdge(id(k, ops[idx-1]), to) // program order
			}
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				from, ok := index[stageOp{d.Stage, d.Op}]
				if !ok {
					return fmt.Errorf("sched: %s stage %d: op %s depends on absent %s@stage%d: %w", s, k, op, d.Op, d.Stage, errs.ErrIncompatible)
				}
				addEdge(from, to)
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, t := range adj[n] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, int(t))
			}
		}
	}
	if done != len(nodes) {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("sched: %s deadlocks: op %s@stage%d is on a dependency cycle: %w", s, nodes[i].op, nodes[i].stage, errs.ErrUncertified)
			}
		}
	}
	return nil
}
