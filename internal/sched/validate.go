package sched

import (
	"fmt"

	"mepipe/internal/errs"
)

// Validate checks that the schedule is complete and executable:
//
//   - every stage contains exactly the required op multiset — one forward
//     and one backward (fused, or BAct plus W or WPieces) per
//     (micro-batch, slice, local chunk);
//   - the global graph formed by per-stage program order plus data
//     dependencies is acyclic, i.e. sequential workers executing their
//     lists in order can never deadlock.
//
// A nil error means any dependency-respecting executor can run the schedule
// to completion. Both checks run on the dense arithmetic op index
// (opIndexer) — no hashing, no per-op allocation.
func (s *Schedule) Validate() error {
	if s.P <= 0 || s.V <= 0 || s.S <= 0 || s.N <= 0 {
		return fmt.Errorf("sched: %s has non-positive shape: %w", s, errs.ErrIncompatible)
	}
	if len(s.Stages) != s.P {
		return fmt.Errorf("sched: %s has %d stage lists, want %d: %w", s, len(s.Stages), s.P, errs.ErrIncompatible)
	}
	if s.Place == nil {
		return fmt.Errorf("sched: %s has no chunk placement: %w", s, errs.ErrIncompatible)
	}
	if err := s.checkComplete(); err != nil {
		return err
	}
	return s.checkAcyclic()
}

func (s *Schedule) checkComplete() error {
	x := s.indexer()
	seen := make([]bool, x.perStage)
	for k, ops := range s.Stages {
		for i := range seen {
			seen[i] = false
		}
		for _, op := range ops {
			if err := s.checkShape(k, op); err != nil {
				return err
			}
			id := int(x.id(k, op)) - k*x.perStage
			if seen[id] {
				return fmt.Errorf("sched: %s stage %d: duplicate op %s: %w", s, k, op, errs.ErrIncompatible)
			}
			seen[id] = true
		}
		want := s.OpsPerStage()
		if len(ops) != want {
			return fmt.Errorf("sched: %s stage %d: %d ops, want %d: %w", s, k, len(ops), want, errs.ErrIncompatible)
		}
		// Completeness: want distinct in-shape ops out of exactly want
		// possible means every (kind, m, i, j[, piece]) is present; the
		// scan below can only fire if the shape arithmetic ever drifts
		// from OpsPerStage.
		for id, ok := range seen {
			if !ok {
				_, op := x.opAt(int32(k*x.perStage + id))
				return fmt.Errorf("sched: %s stage %d: missing op %s: %w", s, k, op, errs.ErrIncompatible)
			}
		}
	}
	return nil
}

func (s *Schedule) checkShape(stage int, op Op) error {
	if op.Micro < 0 || op.Micro >= s.N || op.Slice < 0 || op.Slice >= s.S || op.Chunk < 0 || op.Chunk >= s.V {
		return fmt.Errorf("sched: %s stage %d: op %s out of range: %w", s, stage, op, errs.ErrIncompatible)
	}
	switch op.Kind {
	case F:
	case B:
		if s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: fused %s in split schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case BAct:
		if !s.SplitBW {
			return fmt.Errorf("sched: %s stage %d: %s in fused schedule: %w", s, stage, op, errs.ErrIncompatible)
		}
	case W:
		if !s.SplitBW || s.WPieces > 0 {
			return fmt.Errorf("sched: %s stage %d: unexpected whole %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	case WPiece:
		if !s.SplitBW || s.WPieces == 0 || op.Piece < 0 || op.Piece >= s.WPieces {
			return fmt.Errorf("sched: %s stage %d: unexpected %s: %w", s, stage, op, errs.ErrIncompatible)
		}
	default:
		return fmt.Errorf("sched: %s stage %d: unknown kind in %s: %w", s, stage, op, errs.ErrIncompatible)
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm over program-order and data edges,
// numbering nodes with the dense arithmetic index. checkComplete has
// already proven every in-shape op present, so a dependency that decodes
// to a valid id is known to exist.
func (s *Schedule) checkAcyclic() error {
	x := s.indexer()
	total := x.total()
	indeg := make([]int32, total)
	// Edge counting pass: one program-order edge per adjacent pair plus
	// the data dependencies.
	edges := 0
	var deps []Dep
	for k, ops := range s.Stages {
		if len(ops) > 1 {
			edges += len(ops) - 1
		}
		for _, op := range ops {
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				if x.id(d.Stage, d.Op) < 0 {
					return fmt.Errorf("sched: %s stage %d: op %s depends on absent %s@stage%d: %w", s, k, op, d.Op, d.Stage, errs.ErrIncompatible)
				}
			}
			edges += len(deps)
		}
	}
	// CSR fill pass.
	off := make([]int32, total+1)
	for k, ops := range s.Stages {
		for idx, op := range ops {
			if idx > 0 {
				off[x.id(k, ops[idx-1])+1]++
			}
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				off[x.id(d.Stage, d.Op)+1]++
			}
		}
	}
	for id := 0; id < total; id++ {
		off[id+1] += off[id]
	}
	adj := make([]int32, edges)
	cursor := make([]int32, total)
	addEdge := func(from, to int32) {
		adj[off[from]+cursor[from]] = to
		cursor[from]++
		indeg[to]++
	}
	for k, ops := range s.Stages {
		for idx, op := range ops {
			to := x.id(k, op)
			if idx > 0 {
				addEdge(x.id(k, ops[idx-1]), to)
			}
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				addEdge(x.id(d.Stage, d.Op), to)
			}
		}
	}
	queue := make([]int32, 0, total)
	for id := 0; id < total; id++ {
		if indeg[id] == 0 {
			queue = append(queue, int32(id))
		}
	}
	done := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for e := off[n]; e < off[n+1]; e++ {
			t := adj[e]
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if done != total {
		// Report the first stuck op in stage-list appearance order — the
		// order the old first-appearance node numbering produced.
		for k, ops := range s.Stages {
			for _, op := range ops {
				if indeg[x.id(k, op)] > 0 {
					return fmt.Errorf("sched: %s deadlocks: op %s@stage%d is on a dependency cycle: %w", s, op, k, errs.ErrUncertified)
				}
			}
		}
	}
	return nil
}
