package lint

import (
	"reflect"
	"strings"
	"testing"
)

// testProgram loads the whole-program view of the seeded testdata tree.
func testProgram(t *testing.T) *Program {
	t.Helper()
	root := repoRoot(t)
	dirs, err := expand(root, []string{"./internal/lint/testdata/..."})
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := loadProgram(root, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// findNode returns the unique function whose display name ends in suffix.
func findNode(t *testing.T, p *Program, suffix string) *FuncNode {
	t.Helper()
	var hit *FuncNode
	for _, n := range p.funcs {
		if strings.HasSuffix(n.name, suffix) {
			if hit != nil {
				t.Fatalf("suffix %q ambiguous: %s and %s", suffix, hit.name, n.name)
			}
			hit = n
		}
	}
	if hit == nil {
		t.Fatalf("no function %q in program", suffix)
	}
	return hit
}

// callsTo reports whether p's call graph has an edge from n to a function
// whose display name ends in suffix.
func callsTo(p *Program, n *FuncNode, suffix string) bool {
	for _, s := range p.successors(n) {
		if strings.HasSuffix(s.name, suffix) {
			return true
		}
	}
	return false
}

// TestCallGraphEdges covers the three edge kinds the deep analyzers depend
// on: same-package static calls, cross-package static calls resolved through
// real type-checking, and the two fallbacks (interface dispatch by
// name+arity, method values flowing through function-typed variables).
func TestCallGraphEdges(t *testing.T) {
	p := testProgram(t)

	entry := findNode(t, p, "deepdet.Entry")
	if !callsTo(p, entry, "deepdet.middle") {
		t.Error("missing same-package static edge Entry -> middle")
	}
	if !callsTo(p, findNode(t, p, "deepdet.middle"), "deephelp.Stamp") {
		t.Error("missing cross-package static edge middle -> deephelp.Stamp")
	}
	// Dispatch calls s.Tick() through a locally declared interface; only the
	// name+arity fallback can link it to the concrete method.
	if !callsTo(p, findNode(t, p, "deepdet.Dispatch"), "(Ticker).Tick") {
		t.Error("missing interface-dispatch fallback edge Dispatch -> (Ticker).Tick")
	}
	// Sample binds w.Wait to a variable and calls it; the method value makes
	// Wait address-taken and the dynamic fallback links the call site.
	if !callsTo(p, findNode(t, p, "deepdet.Sample"), "(Waiter).Wait") {
		t.Error("missing method-value fallback edge Sample -> (Waiter).Wait")
	}
	// Fallback edges must stay inside the caller's import closure: deephot
	// imports nothing, so its calls can never leak into deephelp.
	for _, s := range p.successors(findNode(t, p, "deephot.Warm")) {
		if strings.Contains(s.name, "deephelp") {
			t.Errorf("fallback edge escaped import closure: Warm -> %s", s.name)
		}
	}
	if got := p.successors(findNode(t, p, "deephelp.Pure")); len(got) != 0 {
		t.Errorf("leaf function has successors: %v", got)
	}
}

// TestTransitiveDeterminismChains pins the full-chain reporting: each
// violation carries the entry-point-to-sink path, including hops that only
// exist via the dispatch fallbacks.
func TestTransitiveDeterminismChains(t *testing.T) {
	root := repoRoot(t)
	diags, err := Run(root, []string{"./internal/lint/testdata/..."}, Options{Rules: []string{"transitive-determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("want 3 transitive-determinism violations, got %d: %v", len(diags), diags)
	}
	const pre = "internal/lint/testdata/internal/"
	want := [][]string{
		{pre + "deepdet.Entry", pre + "deepdet.middle", pre + "deephelp.Stamp"},
		{pre + "deepdet.Dispatch", pre + "deephelp.(Ticker).Tick"},
		{pre + "deepdet.Sample", pre + "deephelp.(Waiter).Wait"},
	}
	for i, d := range diags {
		if !reflect.DeepEqual(d.Chain, want[i]) {
			t.Errorf("diag %d chain = %v, want %v", i, d.Chain, want[i])
		}
		if !strings.Contains(d.Msg, "[via "+strings.Join(want[i], " -> ")+"]") {
			t.Errorf("diag %d message does not render its chain: %s", i, d.Msg)
		}
	}
}

// TestHotpathColdallocBoundary checks that a hotpath proof follows calls
// transitively but stops at audited mepipe:coldalloc functions: Step's
// make() two hops down is flagged with its chain, while Warm — whose only
// allocations sit behind a coldalloc refill, inside a panic argument, or in
// a self-append — stays silent.
func TestHotpathColdallocBoundary(t *testing.T) {
	root := repoRoot(t)
	diags, err := Run(root, []string{"./internal/lint/testdata/..."}, Options{Rules: []string{"hotpath-alloc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the Step->scale->grow violation, got %v", diags)
	}
	d := diags[0]
	const pre = "internal/lint/testdata/internal/deephot."
	if want := []string{pre + "Step", pre + "scale", pre + "grow"}; !reflect.DeepEqual(d.Chain, want) {
		t.Errorf("chain = %v, want %v", d.Chain, want)
	}
	for _, n := range []string{"Warm", "refill"} {
		if strings.Contains(d.Msg, n) {
			t.Errorf("coldalloc-guarded function %s leaked into %s", n, d.Msg)
		}
	}
}

// TestCtxFlow checks the context-threading analyzer on the seeded serve
// tree: Plan drops its ctx twice (fresh Background plus an unthreaded call),
// Derived threads a derived context and stays clean.
func TestCtxFlow(t *testing.T) {
	root := repoRoot(t)
	diags, err := Run(root, []string{"./internal/lint/testdata/..."}, Options{Rules: []string{"ctxflow"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 ctxflow violations, got %v", diags)
	}
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "serve/flow.go") || d.Pos.Line != 12 {
			t.Errorf("violation outside Plan's body: %s", d)
		}
		if !strings.Contains(d.Msg, "Plan") {
			t.Errorf("message does not name the offending function: %s", d.Msg)
		}
	}
}

// TestAllowStale pins the staleness diagnostic: an allowlist entry that
// suppresses nothing is itself a violation, anchored at its line in the
// allowlist file — unless its rule was filtered out of the run, in which
// case the run cannot prove anything about the entry.
func TestAllowStale(t *testing.T) {
	root := repoRoot(t)
	allow := Allowlist{
		{Rule: "gospawn", PathSuffix: "pipeline/bad.go", Line: 3},
		{Rule: "noprint", PathSuffix: "no/such/file.go", Line: 7},
	}
	opts := Options{Allow: allow, ReportStale: true, AllowPath: ".mepipe-lint-allow"}
	diags, err := Run(root, []string{"./internal/lint/testdata/internal/pipeline"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one allowstale diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Rule != "allowstale" || d.Pos.Filename != ".mepipe-lint-allow" || d.Pos.Line != 7 || d.Pos.Column != 1 {
		t.Errorf("staleness diagnostic anchored wrong: %s", d)
	}
	const wantMsg = "allowlist entry `noprint no/such/file.go` suppresses nothing; the violation it audited is gone — delete the entry"
	if d.Msg != wantMsg {
		t.Errorf("message = %q, want %q", d.Msg, wantMsg)
	}

	// With noprint filtered out of the run, its entry is exempt from the
	// staleness check and the used gospawn entry keeps suppressing.
	opts.Rules = []string{"gospawn"}
	diags, err = Run(root, []string{"./internal/lint/testdata/internal/pipeline"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("rule-filtered run reported diagnostics: %v", diags)
	}
}
