// Package lint implements mepipe-lint, the repository's zero-dependency
// static analyzers. Each rule enforces one repo invariant that ordinary
// tests cannot: deterministic packages must not read wall clocks or the
// global math/rand stream, the pipeline runtime must route every goroutine
// through its latch-guarded spawn helper, library packages must not write
// to stdout, and errors crossing a package boundary must wrap an errs
// sentinel so callers can classify them with errors.Is.
//
// The analyzers are built on go/parser and go/types only. Files are parsed
// per directory; identifier-to-package resolution uses the type checker
// with a stub importer (every import resolves to an empty package, so the
// checker still records which identifiers name imported packages — the
// only fact the rules need — without compiling any dependencies), falling
// back to the file's import-alias table when type information is missing.
// Test files (*_test.go) are exempt from every rule.
//
// Findings can be suppressed through an allowlist file (one `rule
// path-suffix` pair per line, `#` comments); the repository's audited
// exceptions live in .mepipe-lint-allow at the module root. See
// docs/VERIFICATION.md for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one rule violation anchored to a file position. Filename
// is relative to the module root, slash-separated, so output is stable
// across machines.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// AllowEntry suppresses one rule for files whose root-relative path ends
// with PathSuffix.
type AllowEntry struct {
	Rule       string
	PathSuffix string
}

// Allowlist is the parsed set of audited exceptions.
type Allowlist []AllowEntry

// ParseAllowlist reads the `rule path-suffix` line format. Blank lines and
// `#` comments are skipped; any other malformed line is an error so typos
// cannot silently disable enforcement.
func ParseAllowlist(data []byte) (Allowlist, error) {
	var a Allowlist
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("lint: allowlist line %d: want `rule path-suffix`, got %q", i+1, line)
		}
		a = append(a, AllowEntry{Rule: fields[0], PathSuffix: fields[1]})
	}
	return a, nil
}

// LoadAllowlist reads an allowlist file; a missing file is an empty list.
func LoadAllowlist(path string) (Allowlist, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseAllowlist(data)
}

// Allows reports whether the entry set suppresses rule at file (a
// root-relative slash path).
func (a Allowlist) Allows(rule, file string) bool {
	for _, e := range a {
		if e.Rule == rule && strings.HasSuffix(file, e.PathSuffix) {
			return true
		}
	}
	return false
}

// Options configures a Run.
type Options struct {
	// Allow suppresses matching diagnostics.
	Allow Allowlist
	// Rules restricts the run to the named rules; empty means all.
	Rules []string
}

// Run expands the package patterns (Go-style: a directory, or a `/...`
// suffix for a recursive walk that skips testdata, vendor and dot
// directories) relative to the module root, analyzes every non-test file,
// and returns the surviving diagnostics sorted by position.
func Run(root string, patterns []string, opts Options) ([]Diagnostic, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	enabled := map[string]bool{}
	for _, r := range opts.Rules {
		enabled[r] = true
	}
	var out []Diagnostic
	for _, dir := range dirs {
		diags, err := checkDir(root, dir, enabled)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	kept := out[:0]
	for _, d := range out {
		if !opts.Allow.Allows(d.Rule, d.Pos.Filename) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept, nil
}

// expand resolves patterns to package directories under root.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := pat == "..." || strings.HasSuffix(pat, "/...")
		base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if base == "" {
			base = "."
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			}
			continue
		}
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != abs {
				name := d.Name()
				if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// pkgCtx is one analyzed directory.
type pkgCtx struct {
	root string
	rel  string // slash-separated dir path relative to root
	fset *token.FileSet
	info *types.Info // may be nil when type checking was impossible
}

// fileCtx is one file plus its import-alias fallback table.
type fileCtx struct {
	*pkgCtx
	file    *ast.File
	imports map[string]string // local name -> import path
}

// pkgPath resolves an identifier to the import path of the package it
// names, or "" when it does not name an imported package (including when a
// local declaration shadows the package name). Type information is
// authoritative; the alias table is the fallback.
func (fc *fileCtx) pkgPath(id *ast.Ident) string {
	if fc.info != nil {
		if obj, ok := fc.info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	return fc.imports[id.Name]
}

// checkDir parses and analyzes one directory.
func checkDir(root, dir string, enabled map[string]bool) ([]Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	pc := &pkgCtx{root: root, rel: rel, fset: fset, info: typecheck(fset, files, rel)}
	var out []Diagnostic
	for _, f := range files {
		fc := &fileCtx{pkgCtx: pc, file: f, imports: importTable(f)}
		for _, r := range rules {
			if len(enabled) > 0 && !enabled[r.name] {
				continue
			}
			if !r.applies(rel) {
				continue
			}
			rule := r // capture for the closure
			r.check(fc, func(pos token.Pos, msg string) {
				p := fset.Position(pos)
				if rp, err := filepath.Rel(root, p.Filename); err == nil {
					p.Filename = filepath.ToSlash(rp)
				}
				out = append(out, Diagnostic{Rule: rule.name, Pos: p, Msg: msg})
			})
		}
	}
	return out, nil
}

// typecheck runs go/types over the package with every import stubbed to an
// empty package: cheap (no dependency is compiled or parsed), and enough
// for the checker to record which identifiers name imported packages.
// Checking errors are expected (stubbed members do not resolve) and
// ignored; a nil return means type information is unavailable and rules
// fall back to the syntactic import table.
func typecheck(fset *token.FileSet, files []*ast.File, path string) (info *types.Info) {
	defer func() {
		if recover() != nil {
			info = nil
		}
	}()
	info = &types.Info{Uses: make(map[*ast.Ident]types.Object)}
	conf := types.Config{
		Importer: &stubImporter{cache: map[string]*types.Package{}},
		Error:    func(error) {},
	}
	conf.Check(path, fset, files, info) //nolint:errcheck // stub imports always error
	return info
}

type stubImporter struct {
	cache map[string]*types.Package
}

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.cache[path] = p
	return p, nil
}

// importTable maps each import's local name to its path (the syntactic
// fallback when type information is unavailable).
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		t[name] = path
	}
	return t
}
