// Package lint implements mepipe-lint, the repository's zero-dependency
// static analyzers. Each rule enforces one repo invariant that ordinary
// tests cannot: deterministic packages must not read wall clocks or the
// global math/rand stream, the pipeline runtime must route every goroutine
// through its latch-guarded spawn helper, library packages must not write
// to stdout, and errors crossing a package boundary must wrap an errs
// sentinel so callers can classify them with errors.Is.
//
// On top of the per-file rules sit three whole-program analyzers built on
// a module-wide call graph (see callgraph.go): transitive determinism
// from //mepipe:deterministic entry points, the static zero-allocation
// proof for //mepipe:hotpath functions, and context-flow checking for the
// exported serve/strategy/opt API. Their violations report the full call
// chain from the annotated root to the offending construct.
//
// Everything is built on go/parser and go/types only. The module is
// parsed once; packages are type-checked in dependency order with
// module-internal imports resolving to the real checked packages and
// external imports stubbed as empty packages, falling back to each file's
// import-alias table when type information is missing. Test files
// (*_test.go) are exempt from every rule.
//
// Findings can be suppressed through an allowlist file (one `rule
// path-suffix` pair per line, `#` comments); the repository's audited
// exceptions live in .mepipe-lint-allow at the module root. The allowlist
// is strict: on whole-module runs an entry that suppresses nothing is
// itself reported (rule "allowstale"), so dead exceptions cannot
// accumulate. See docs/VERIFICATION.md for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one rule violation anchored to a file position. Filename
// is relative to the module root, slash-separated, so output is stable
// across machines. Chain, set only by the whole-program analyzers, is the
// call path from the annotated root to the function containing the
// violation (root first); it is also rendered into Msg.
type Diagnostic struct {
	Rule  string
	Pos   token.Position
	Msg   string
	Chain []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// AllowEntry suppresses one rule for files whose root-relative path ends
// with PathSuffix. Line is the 1-based line in the allowlist file it was
// parsed from, used to anchor staleness diagnostics.
type AllowEntry struct {
	Rule       string
	PathSuffix string
	Line       int
}

// Allowlist is the parsed set of audited exceptions.
type Allowlist []AllowEntry

// ParseAllowlist reads the `rule path-suffix` line format. Blank lines and
// `#` comments are skipped; any other malformed line is an error so typos
// cannot silently disable enforcement.
func ParseAllowlist(data []byte) (Allowlist, error) {
	var a Allowlist
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("lint: allowlist line %d: want `rule path-suffix`, got %q", i+1, line)
		}
		a = append(a, AllowEntry{Rule: fields[0], PathSuffix: fields[1], Line: i + 1})
	}
	return a, nil
}

// LoadAllowlist reads an allowlist file; a missing file is an empty list.
func LoadAllowlist(path string) (Allowlist, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseAllowlist(data)
}

// Allows reports whether the entry set suppresses rule at file (a
// root-relative slash path).
func (a Allowlist) Allows(rule, file string) bool {
	for _, e := range a {
		if e.Rule == rule && strings.HasSuffix(file, e.PathSuffix) {
			return true
		}
	}
	return false
}

// Options configures a Run.
type Options struct {
	// Allow suppresses matching diagnostics.
	Allow Allowlist
	// Rules restricts the run to the named rules; empty means all.
	Rules []string
	// ReportStale turns unused allowlist entries into "allowstale"
	// diagnostics. Only meaningful on whole-module runs — on a package
	// subset most entries legitimately match nothing — so callers enable
	// it when the patterns cover the module (cmd/mepipe-lint does for
	// `./...`).
	ReportStale bool
	// AllowPath is the root-relative path of the allowlist file, used to
	// position staleness diagnostics; defaults to ".mepipe-lint-allow".
	AllowPath string
}

// Run expands the package patterns (Go-style: a directory, or a `/...`
// suffix for a recursive walk that skips testdata, vendor and dot
// directories) relative to the module root, loads the whole program,
// analyzes every non-test file, and returns the surviving diagnostics
// sorted by position.
func Run(root string, patterns []string, opts Options) ([]Diagnostic, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	enabled := map[string]bool{}
	for _, r := range opts.Rules {
		enabled[r] = true
	}
	on := func(rule string) bool { return len(enabled) == 0 || enabled[rule] }

	prog, annDiags, err := loadProgram(root, dirs)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	if on("annotation") {
		out = append(out, annDiags...)
	}
	for _, pkg := range prog.pkgs {
		for _, pf := range pkg.files {
			fc := &fileCtx{pf: pf, file: pf.syntax}
			for _, r := range rules {
				if !on(r.name) || !r.applies(pkg.rel) {
					continue
				}
				rule := r.name // capture for the closure
				r.check(fc, func(pos token.Pos, msg string) {
					out = append(out, Diagnostic{Rule: rule, Pos: prog.position(pos), Msg: msg})
				})
			}
		}
	}
	for _, dr := range deepRules {
		if on(dr.name) {
			dr.run(prog, func(d Diagnostic) { out = append(out, d) })
		}
	}

	used := make([]bool, len(opts.Allow))
	kept := out[:0]
	for _, d := range out {
		suppressed := false
		for i, e := range opts.Allow {
			if e.Rule == d.Rule && strings.HasSuffix(d.Pos.Filename, e.PathSuffix) {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	if opts.ReportStale && on("allowstale") {
		allowPath := opts.AllowPath
		if allowPath == "" {
			allowPath = ".mepipe-lint-allow"
		}
		for i, e := range opts.Allow {
			if used[i] || !on(e.Rule) {
				continue
			}
			kept = append(kept, Diagnostic{
				Rule: "allowstale",
				Pos:  token.Position{Filename: allowPath, Line: e.Line, Column: 1},
				Msg: fmt.Sprintf("allowlist entry `%s %s` suppresses nothing; the violation it audited is gone — delete the entry",
					e.Rule, e.PathSuffix),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept, nil
}

// expand resolves patterns to package directories under root.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := pat == "..." || strings.HasSuffix(pat, "/...")
		base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if base == "" {
			base = "."
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			}
			continue
		}
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != abs {
				name := d.Name()
				if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// fileCtx is the per-file view the per-file rules run on.
type fileCtx struct {
	pf   *progFile
	file *ast.File
}

// pkgPath resolves an identifier to the import path of the package it
// names, or "" when it does not name an imported package.
func (fc *fileCtx) pkgPath(id *ast.Ident) string {
	return fc.pf.pkgPath(id)
}

// isBuiltin reports whether id resolves to a universe builtin. Without
// type information a shadowing declaration cannot be detected, so the
// name is assumed to be the builtin (the conservative direction for a
// forbidding rule).
func (fc *fileCtx) isBuiltin(id *ast.Ident) bool {
	if info := fc.pf.pkg.info; info != nil {
		if obj, ok := info.Uses[id]; ok {
			_, isB := obj.(*types.Builtin)
			return isB
		}
	}
	return true
}
