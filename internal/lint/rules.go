package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// reporter receives one violation.
type reporter func(pos token.Pos, msg string)

// rules is the analyzer catalogue. applies gates a rule by the package
// directory's root-relative path; check walks one parsed file.
var rules = []struct {
	name    string
	applies func(rel string) bool
	check   func(fc *fileCtx, report reporter)
}{
	{name: "determinism", applies: deterministicPkg, check: checkDeterminism},
	{name: "gospawn", applies: anyPkg(pkgUnder("internal/pipeline"), pkgUnder("internal/tensor"), pkgUnder("internal/opt"), pkgUnder("internal/sim"), pkgUnder("internal/strategy")), check: checkGoSpawn},
	{name: "noprint", applies: pkgUnder("internal"), check: checkNoPrint},
	{name: "errwrap", applies: boundaryPkg, check: checkErrWrap},
}

// Rules returns every analyzer name — the per-file rules, the
// whole-program analyzers, and the framework's own diagnostics
// ("annotation" for malformed //mepipe: directives, "allowstale" for
// allowlist entries that suppress nothing) — for -rule validation and
// docs.
func Rules() []string {
	var out []string
	for _, r := range rules {
		out = append(out, r.name)
	}
	for _, r := range deepRules {
		out = append(out, r.name)
	}
	return append(out, "annotation", "allowstale")
}

// anyPkg matches when any of the given package predicates matches.
func anyPkg(preds ...func(string) bool) func(string) bool {
	return func(rel string) bool {
		for _, p := range preds {
			if p(rel) {
				return true
			}
		}
		return false
	}
}

// pkgUnder matches directories at or below the given root-relative path.
// Matching is by path-segment containment so the rule also fires on the
// mirrored trees under internal/lint/testdata.
func pkgUnder(prefix string) func(string) bool {
	return func(rel string) bool {
		return strings.Contains("/"+rel+"/", "/"+prefix+"/")
	}
}

// deterministicPkg lists the packages whose behaviour must be a pure
// function of their inputs: the simulator and its cost models, schedule
// generation, the strategy search, the schedule optimizer (a fixed seed
// must discover byte-identical schedules), and the fault machinery
// (seeded faults must replay identically). The pipeline runtime and the
// planning server are included — their wall-clock access is confined to
// the audited Clock seams.
func deterministicPkg(rel string) bool {
	for _, p := range []string{
		"internal/sim", "internal/sched", "internal/strategy",
		"internal/faults", "internal/chaos", "internal/pipeline",
		"internal/serve", "internal/opt",
	} {
		if pkgUnder(p)(rel) {
			return true
		}
	}
	return false
}

// boundaryPkg lists the packages whose exported functions promise that
// every returned error wraps an errs sentinel.
func boundaryPkg(rel string) bool {
	for _, p := range []string{
		"internal/sched", "internal/sim", "internal/strategy",
		"internal/memplan", "internal/pipeline", "internal/serve",
		"internal/opt",
	} {
		if pkgUnder(p)(rel) {
			return true
		}
	}
	return false
}

// checkDeterminism flags wall-clock and timer access (any mention of
// time.Now, time.Since, time.Sleep, time.After, time.Tick,
// time.NewTimer, time.NewTicker or time.AfterFunc — mentions, not just
// calls, so assigning time.After to a variable cannot hide it) and calls
// into the global math/rand stream (everything but the
// rand.New/rand.NewSource constructors used to build seeded local
// generators).
func checkDeterminism(fc *fileCtx, report reporter) {
	ast.Inspect(fc.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if fc.pkgPath(id) == "time" && detSinkNames[n.Sel.Name] {
				report(n.Pos(), "time."+n.Sel.Name+" reaches the wall clock in a deterministic package; inject a Clock seam (see internal/pipeline/clock.go)")
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if fc.pkgPath(id) == "math/rand" && sel.Sel.Name != "New" && sel.Sel.Name != "NewSource" {
				report(n.Pos(), "rand."+sel.Sel.Name+" uses the global math/rand stream; use a seeded rand.New(rand.NewSource(seed))")
			}
		}
		return true
	})
}

// checkGoSpawn flags raw go statements in the concurrency-bearing runtime
// packages (the pipeline and the kernel pool): every goroutine must launch
// through the spawn helper — or an allowlisted chokepoint such as
// tensor.spawnKernelWorker — so it is either joined by a WaitGroup or
// unwinds through the runner's failure latch.
func checkGoSpawn(fc *fileCtx, report reporter) {
	ast.Inspect(fc.file, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			report(g.Pos(), "raw go statement in a runtime package; launch goroutines through the spawn helper (internal/pipeline/spawn.go) or an allowlisted chokepoint")
		}
		return true
	})
}

// checkNoPrint flags process-stdout access in library packages: the
// fmt.Print family, the print/println builtins (which write to stderr),
// and any mention of os.Stdout/os.Stderr — output belongs to returned
// values or a caller-supplied io.Writer, never a process-global stream.
func checkNoPrint(fc *fileCtx, report reporter) {
	ast.Inspect(fc.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				id, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				name := fun.Sel.Name
				if fc.pkgPath(id) == "fmt" && (name == "Print" || name == "Printf" || name == "Println") {
					report(n.Pos(), "fmt."+name+" writes to stdout from a library package; return values or take an io.Writer")
				}
			case *ast.Ident:
				if (fun.Name == "print" || fun.Name == "println") && fc.isBuiltin(fun) {
					report(n.Pos(), "the "+fun.Name+" builtin writes to stderr from a library package; return values or take an io.Writer")
				}
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if fc.pkgPath(id) == "os" && (n.Sel.Name == "Stdout" || n.Sel.Name == "Stderr") {
				report(n.Pos(), "os."+n.Sel.Name+" is a process-global stream; library packages must take an io.Writer")
			}
		}
		return true
	})
}

// checkErrWrap flags errors constructed inside function bodies that cannot
// be classified with errors.Is: fmt.Errorf whose literal format string has
// no %w verb, and errors.New (package-level errors.New declares the
// sentinels themselves and is exempt).
func checkErrWrap(fc *fileCtx, report reporter) {
	for _, decl := range fc.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch fc.pkgPath(id) {
			case "fmt":
				if sel.Sel.Name != "Errorf" || len(call.Args) == 0 {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING && !strings.Contains(lit.Value, "%w") {
					report(call.Pos(), "fmt.Errorf without %w drops the sentinel chain; wrap an errs sentinel or the underlying error")
				}
			case "errors":
				if sel.Sel.Name == "New" {
					report(call.Pos(), "errors.New inside a function is unclassifiable by errors.Is; wrap an errs sentinel with fmt.Errorf(...: %w)")
				}
			}
			return true
		})
	}
}
