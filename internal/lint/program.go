package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is the whole-module view the interprocedural analyzers run on:
// every package under the expanded patterns, parsed once and type-checked
// in dependency order. Module-internal imports resolve to the real checked
// packages (so cross-package calls and method selections resolve
// precisely); external imports are stubbed as before, and everything that
// cannot be resolved falls back to the syntactic tables.
type Program struct {
	root    string
	modPath string
	fset    *token.FileSet
	pkgs    []*progPkg
	byRel   map[string]*progPkg

	funcs []*FuncNode
	byObj map[types.Object]*FuncNode
	// closure memoizes each package's transitive module-internal import
	// set (including itself); the call-graph fallbacks only link to
	// candidates visible through it.
	closure map[string]map[string]bool
	// methodsByName indexes method declarations for the interface-dispatch
	// and method-value fallback: when a call's receiver type cannot be
	// resolved, the graph conservatively links every in-module method with
	// a compatible name and arity.
	methodsByName map[string][]*FuncNode
	// addrTaken lists functions referenced as values anywhere in the
	// module; dynamic calls through function-typed variables link to every
	// arity-compatible entry.
	addrTaken []*FuncNode
}

// progPkg is one analyzed package directory.
type progPkg struct {
	rel   string // slash-separated dir path relative to the module root ("" = root)
	path  string // import path within the module
	name  string // package name
	files []*progFile
	info  *types.Info // may be nil when type checking was impossible
	// funcsByName maps top-level (non-method) function names to their
	// nodes, the same-package fallback when type information is missing.
	funcsByName map[string]*FuncNode
}

// progFile is one parsed file plus its import-alias fallback table.
type progFile struct {
	pkg     *progPkg
	syntax  *ast.File
	imports map[string]string // local name -> import path
}

// pkgPath resolves an identifier to the import path of the package it
// names, or "" when it does not (including when a local declaration
// shadows the package name). Type information is authoritative; the alias
// table is the fallback.
func (pf *progFile) pkgPath(id *ast.Ident) string {
	if info := pf.pkg.info; info != nil {
		if obj, ok := info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	return pf.imports[id.Name]
}

// FuncNode is one function or method declaration in the call graph.
type FuncNode struct {
	pkg  *progPkg
	file *progFile
	decl *ast.FuncDecl
	name string // display name: <pkg rel>.<func> or <pkg rel>.(*T).M

	arity    int
	variadic bool

	// Annotations (//mepipe: directives in the doc comment).
	hotpath       bool // root of the static zero-allocation proof
	coldalloc     bool // audited allocation escape: traversal stops here
	deterministic bool // root of the transitive-determinism proof

	// Facts filled by the call-graph scan.
	calls     []callSite
	detSinks  []fact // wall-clock / global-rand reads
	allocs    []fact // allocating constructs (hot-path analyzer)
	refTaken  bool   // referenced as a value somewhere in the module
	succCache []*FuncNode
}

// fact is one position-anchored finding inside a function body.
type fact struct {
	pos token.Pos
	msg string
}

// loadProgram parses and type-checks every package under dirs. Malformed
// or misplaced //mepipe: directives are returned as diagnostics under the
// "annotation" rule (position-relative to root) rather than errors, so a
// typo cannot silently disable a proof.
func loadProgram(root string, dirs []string) (*Program, []Diagnostic, error) {
	p := &Program{
		root:          root,
		modPath:       modulePath(root),
		fset:          token.NewFileSet(),
		byRel:         map[string]*progPkg{},
		byObj:         map[types.Object]*FuncNode{},
		methodsByName: map[string][]*FuncNode{},
	}
	for _, dir := range dirs {
		pkg, err := p.parseDir(dir)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			p.pkgs = append(p.pkgs, pkg)
			p.byRel[pkg.rel] = pkg
		}
	}
	p.typecheckAll()
	p.indexFuncs()
	annDiags := p.applyDirectives()
	scanProgram(p)
	return p, annDiags, nil
}

// modulePath reads the module path from go.mod; a missing or malformed
// file falls back to the directory name.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "module "); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return filepath.Base(root)
}

// importPath maps a root-relative directory to its import path.
func (p *Program) importPath(rel string) string {
	if rel == "" || rel == "." {
		return p.modPath
	}
	return p.modPath + "/" + rel
}

// relOf inverts importPath for module-internal paths; ok is false for
// external packages.
func (p *Program) relOf(path string) (string, bool) {
	if path == p.modPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, p.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// parseDir parses one directory's non-test files; nil when empty.
func (p *Program) parseDir(dir string) (*progPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(p.root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	pkg := &progPkg{rel: rel, path: p.importPath(rel), funcsByName: map[string]*FuncNode{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.files = append(pkg.files, &progFile{pkg: pkg, syntax: f, imports: importTable(f)})
	}
	if len(pkg.files) == 0 {
		return nil, nil
	}
	pkg.name = pkg.files[0].syntax.Name.Name
	return pkg, nil
}

// importClosure returns the set of package rels (including pkg's own)
// that pkg can reach through module-internal imports. The fallback call
// edges are restricted to this set: an interface implementation or a
// function value must be importable by the calling package to be
// dispatched to, so candidates outside the closure are name collisions,
// not callees.
func (p *Program) importClosure(pkg *progPkg) map[string]bool {
	if p.closure == nil {
		p.closure = map[string]map[string]bool{}
	}
	if c, ok := p.closure[pkg.rel]; ok {
		return c
	}
	c := map[string]bool{pkg.rel: true}
	p.closure[pkg.rel] = c // set before recursing; Go imports cannot cycle
	for _, dep := range p.internalImports(pkg) {
		c[dep] = true
		for rel := range p.importClosure(p.byRel[dep]) {
			c[rel] = true
		}
	}
	return c
}

// internalImports lists the module-internal packages pkg imports that are
// part of this program.
func (p *Program) internalImports(pkg *progPkg) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.files {
		for _, imp := range f.syntax.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if rel, ok := p.relOf(path); ok && !seen[rel] {
				if _, present := p.byRel[rel]; present {
					seen[rel] = true
					out = append(out, rel)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// typecheckAll checks every package in dependency order, so that a
// package's module-internal imports resolve to fully checked packages and
// cross-package identifiers get real objects. Go forbids import cycles;
// should the walk still leave packages unprocessed, they are checked last
// with whatever has been resolved so far.
func (p *Program) typecheckAll() {
	im := &moduleImporter{prog: p, real: map[string]*types.Package{}, stubs: map[string]*types.Package{}}
	indeg := map[string]int{}
	rdeps := map[string][]string{}
	for _, pkg := range p.pkgs {
		deps := p.internalImports(pkg)
		indeg[pkg.rel] = len(deps)
		for _, d := range deps {
			rdeps[d] = append(rdeps[d], pkg.rel)
		}
	}
	var queue []string
	for _, pkg := range p.pkgs {
		if indeg[pkg.rel] == 0 {
			queue = append(queue, pkg.rel)
		}
	}
	sort.Strings(queue)
	var order []*progPkg
	for len(queue) > 0 {
		rel := queue[0]
		queue = queue[1:]
		order = append(order, p.byRel[rel])
		next := append([]string(nil), rdeps[rel]...)
		sort.Strings(next)
		for _, r := range next {
			if indeg[r]--; indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
		sort.Strings(queue)
	}
	for _, pkg := range p.pkgs { // defensive: anything the walk missed
		if indeg[pkg.rel] > 0 {
			order = append(order, pkg)
		}
	}
	for _, pkg := range order {
		p.typecheckPkg(pkg, im)
	}
}

// typecheckPkg runs go/types over one package; failures degrade to nil
// info (rules fall back to the syntactic import tables).
func (p *Program) typecheckPkg(pkg *progPkg, im *moduleImporter) {
	defer func() {
		if recover() != nil {
			pkg.info = nil
		}
	}()
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: im, Error: func(error) {}}
	files := make([]*ast.File, len(pkg.files))
	for i, f := range pkg.files {
		files[i] = f.syntax
	}
	tpkg, _ := conf.Check(pkg.path, p.fset, files, info) //nolint:errcheck // stubbed externals always error
	pkg.info = info
	if tpkg != nil {
		im.real[pkg.path] = tpkg
	}
}

// moduleImporter resolves module-internal imports to the real checked
// packages and stubs everything else (empty packages: enough for the
// checker to record which identifiers name imported packages).
type moduleImporter struct {
	prog  *Program
	real  map[string]*types.Package
	stubs map[string]*types.Package
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if tp, ok := im.real[path]; ok {
		return tp, nil
	}
	if tp, ok := im.stubs[path]; ok {
		return tp, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	tp := types.NewPackage(path, name)
	tp.MarkComplete()
	im.stubs[path] = tp
	return tp, nil
}

// indexFuncs builds the function index and fallback tables.
func (p *Program) indexFuncs() {
	for _, pkg := range p.pkgs {
		for _, f := range pkg.files {
			for _, decl := range f.syntax.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				n := &FuncNode{pkg: pkg, file: f, decl: fd, name: displayName(pkg, fd)}
				n.arity, n.variadic = declArity(fd.Type)
				p.funcs = append(p.funcs, n)
				if pkg.info != nil {
					if obj := pkg.info.Defs[fd.Name]; obj != nil {
						p.byObj[obj] = n
					}
				}
				if fd.Recv != nil {
					p.methodsByName[fd.Name.Name] = append(p.methodsByName[fd.Name.Name], n)
				} else if _, dup := pkg.funcsByName[fd.Name.Name]; !dup {
					pkg.funcsByName[fd.Name.Name] = n
				}
			}
		}
	}
}

// displayName renders a stable human-readable function identifier used in
// reported call chains.
func displayName(pkg *progPkg, fd *ast.FuncDecl) string {
	prefix := pkg.rel
	if prefix == "" {
		prefix = pkg.name
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return prefix + "." + fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return prefix + ".(" + recv + ")." + fd.Name.Name
}

// declArity counts declared parameters (each name counts; an unnamed
// field counts once) and reports variadicity.
func declArity(ft *ast.FuncType) (int, bool) {
	if ft.Params == nil {
		return 0, false
	}
	n := 0
	variadic := false
	for _, fld := range ft.Params.List {
		if len(fld.Names) == 0 {
			n++
		} else {
			n += len(fld.Names)
		}
		if _, ok := fld.Type.(*ast.Ellipsis); ok {
			variadic = true
		}
	}
	return n, variadic
}

// arityCompatible reports whether a call passing nargs arguments could
// invoke this function.
func (n *FuncNode) arityCompatible(nargs int) bool {
	if nargs < 0 { // unknown (method value): name match is all we have
		return true
	}
	if n.variadic {
		return nargs >= n.arity-1
	}
	return nargs == n.arity
}

// Directive names accepted in function doc comments.
const (
	dirHotpath       = "hotpath"
	dirColdalloc     = "coldalloc"
	dirDeterministic = "deterministic"
)

// applyDirectives parses //mepipe: directives out of doc comments and
// returns diagnostics for unknown, misplaced, or unjustified ones. A
// directive only counts when it sits in the doc comment of a function
// declaration; anywhere else it is dead weight that would silently
// weaken a proof, so it is reported.
func (p *Program) applyDirectives() []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Rule: "annotation", Pos: p.position(pos), Msg: msg})
	}
	consumed := map[*ast.Comment]bool{}
	for _, n := range p.funcs {
		doc := n.decl.Doc
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			name, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			consumed[c] = true
			switch name {
			case dirHotpath:
				n.hotpath = true
			case dirColdalloc:
				if strings.TrimSpace(arg) == "" {
					report(c.Pos(), "mepipe:coldalloc needs a justification (//mepipe:coldalloc <why this allocation is sanctioned>)")
				}
				n.coldalloc = true
			case dirDeterministic:
				n.deterministic = true
			default:
				report(c.Pos(), fmt.Sprintf("unknown directive //mepipe:%s (have hotpath, coldalloc, deterministic)", name))
			}
		}
		if n.hotpath && n.coldalloc {
			report(n.decl.Pos(), "function is annotated both mepipe:hotpath and mepipe:coldalloc; pick one")
		}
	}
	for _, pkg := range p.pkgs {
		for _, f := range pkg.files {
			for _, cg := range f.syntax.Comments {
				for _, c := range cg.List {
					if name, _, ok := parseDirective(c.Text); ok && !consumed[c] {
						report(c.Pos(), fmt.Sprintf("//mepipe:%s is not in the doc comment of a function declaration, so it has no effect", name))
					}
				}
			}
		}
	}
	return out
}

// parseDirective splits a "//mepipe:name arg..." comment line.
func parseDirective(text string) (name, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, "//mepipe:")
	if !found {
		return "", "", false
	}
	name, arg, _ = strings.Cut(rest, " ")
	return name, arg, name != ""
}

// position converts a token.Pos to a root-relative Position.
func (p *Program) position(pos token.Pos) token.Position {
	pp := p.fset.Position(pos)
	if rp, err := filepath.Rel(p.root, pp.Filename); err == nil {
		pp.Filename = filepath.ToSlash(rp)
	}
	return pp
}

// importTable maps each import's local name to its path (the syntactic
// fallback when type information is unavailable).
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		t[name] = path
	}
	return t
}
