package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("no go.mod at %s: %v", root, err)
	}
	return root
}

// TestGolden locks the diagnostic format: the seeded violations under
// testdata must produce exactly the recorded file:line:col output, and the
// shadowed identifiers there must stay silent.
func TestGolden(t *testing.T) {
	root := repoRoot(t)
	diags, err := Run(root, []string{"./internal/lint/testdata/..."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != string(want) {
		t.Errorf("diagnostics diverge from testdata/golden.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRepoClean is the invariant itself: the repository, under its checked
// in allowlist, has zero violations — and every allowlist entry still
// suppresses something (ReportStale), so audited exceptions cannot outlive
// the code they excused.
func TestRepoClean(t *testing.T) {
	root := repoRoot(t)
	allow, err := LoadAllowlist(filepath.Join(root, ".mepipe-lint-allow"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, Options{Allow: allow, ReportStale: true, AllowPath: ".mepipe-lint-allow"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected violation: %s", d)
	}
}

// TestAllowlist covers the suppression format and its failure modes.
func TestAllowlist(t *testing.T) {
	a, err := ParseAllowlist([]byte("# comment\n\ndeterminism internal/pipeline/clock.go\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Allows("determinism", "internal/pipeline/clock.go") {
		t.Error("exact suffix not allowed")
	}
	if a.Allows("gospawn", "internal/pipeline/clock.go") {
		t.Error("allow leaked across rules")
	}
	if a.Allows("determinism", "internal/pipeline/pipeline.go") {
		t.Error("allow leaked across files")
	}
	if _, err := ParseAllowlist([]byte("malformed line with extra fields\n")); err == nil {
		t.Error("malformed allowlist accepted")
	}

	// An allow entry must actually suppress a reported violation.
	root := repoRoot(t)
	allow := Allowlist{{Rule: "gospawn", PathSuffix: "pipeline/bad.go"}}
	diags, err := Run(root, []string{"./internal/lint/testdata/internal/pipeline"}, Options{Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("allowlisted violation still reported: %v", diags)
	}
}

// TestRuleFilter checks Options.Rules restricts the run.
func TestRuleFilter(t *testing.T) {
	root := repoRoot(t)
	diags, err := Run(root, []string{"./internal/lint/testdata/..."}, Options{Rules: []string{"gospawn"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Rule != "gospawn" || diags[1].Rule != "gospawn" {
		t.Errorf("want exactly the two gospawn violations, got %v", diags)
	}
}
