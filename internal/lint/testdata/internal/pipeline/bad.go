// Package pipeline mirrors internal/pipeline under testdata: the raw go
// statement below is the gospawn seed violation.
package pipeline

import "sync"

// Leak launches a goroutine without the spawn helper.
func Leak(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // gospawn: raw go statement
		defer wg.Done()
	}()
}
