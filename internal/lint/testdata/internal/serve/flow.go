// Package serve mirrors internal/serve under testdata: seeded
// context-flow violations. The path-segment match on internal/serve puts
// this tree in the ctxflow analyzer's scope.
package serve

import "context"

// Plan drops its context: the true branch manufactures a fresh root and
// passes it to a ctx-taking callee instead of threading ctx.
func Plan(ctx context.Context, n int) int {
	if n > 1 {
		return run(context.Background(), n) // ctxflow: fresh root + unthreaded call
	}
	return run(ctx, n) // ok: threaded directly
}

// Derived threads a context derived from ctx — no diagnostics.
func Derived(ctx context.Context, n int) int {
	c2, cancel := context.WithCancel(ctx)
	defer cancel()
	return run(c2, n)
}

// run accepts a context; callers above must thread theirs into it.
func run(ctx context.Context, n int) int {
	_ = ctx
	return n
}
