// Package deephot seeds the hot-path allocation analyzer and the
// annotation diagnostics.
package deephot

// Step is an annotated hot root; the allocation it reaches is two calls
// down and must be reported with the full chain.
//
//mepipe:hotpath
func Step(buf []float32) []float32 {
	return scale(buf)
}

func scale(buf []float32) []float32 {
	return grow(buf)
}

func grow(buf []float32) []float32 {
	out := make([]float32, len(buf)+1) // hotpath-alloc: reached from Step
	copy(out, buf)
	return out
}

// refill is the audited escape hatch: its allocation and anything it
// calls are exempt from the proof.
//
//mepipe:coldalloc pool miss refills the arena once per size class
func refill(n int) []float32 {
	return make([]float32, n)
}

// Warm exercises the exemptions: a coldalloc callee, the amortized
// self-append idiom, and a panic message. None of these may be reported.
//
//mepipe:hotpath
func Warm(dst []float32) []float32 {
	if cap(dst) == 0 {
		dst = refill(8)[:0]
	}
	if len(dst) > 1<<20 {
		panic("warm buffer over budget: " + "details")
	}
	dst = append(dst, 1)
	return dst
}

// Typo carries an unknown directive: the annotation rule must flag it
// rather than silently skipping the proof.
//
//mepipe:hotpth
func Typo() {}

// The directive below is attached to a var, not a function declaration —
// the annotation rule must report it as having no effect.
//
//mepipe:hotpath
var scratch []float32
