// Package sim mirrors internal/sim under testdata: every construct below
// is a seeded violation the golden test expects mepipe-lint to report.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Seed exercises the determinism, noprint and errwrap rules.
func Seed() error {
	t0 := time.Now()                    // determinism: wall clock
	dur := time.Since(t0)               // determinism: wall clock
	n := rand.Intn(10)                  // determinism: global rand stream
	ok := rand.New(rand.NewSource(1))   // allowed: seeded local generator
	fmt.Println("progress", n, dur, ok) // noprint: stdout from a library
	if n > 5 {
		return errors.New("too big") // errwrap: unclassifiable
	}
	return fmt.Errorf("n=%d after %v", n, dur) // errwrap: no %w
}

// Shadow proves identifier resolution: these locals shadow the package
// names, so nothing here may be reported.
func Shadow() {
	time := clock{}
	time.Now()
	rand := clock{}
	rand.Intn()
}

type clock struct{}

func (clock) Now()  {}
func (clock) Intn() {}
