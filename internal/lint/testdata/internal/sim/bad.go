// Package sim mirrors internal/sim under testdata: every construct below
// is a seeded violation the golden test expects mepipe-lint to report.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Seed exercises the determinism, noprint and errwrap rules.
func Seed() error {
	t0 := time.Now()                    // determinism: wall clock
	dur := time.Since(t0)               // determinism: wall clock
	n := rand.Intn(10)                  // determinism: global rand stream
	ok := rand.New(rand.NewSource(1))   // allowed: seeded local generator
	fmt.Println("progress", n, dur, ok) // noprint: stdout from a library
	if n > 5 {
		return errors.New("too big") // errwrap: unclassifiable
	}
	return fmt.Errorf("n=%d after %v", n, dur) // errwrap: no %w
}

// Timers exercises the determinism rule's timer coverage: sleeps, fired
// timers, and a timer API that is only mentioned, never called.
func Timers() {
	time.Sleep(time.Millisecond) // determinism: timer
	wake := time.After(0)        // determinism: timer hidden behind an assignment
	<-wake
	tick := time.NewTicker(time.Second) // determinism: timer
	tick.Stop()
}

// Streams exercises the noprint rule's gaps: the println builtin and a
// direct mention of a process-global stream.
func Streams() {
	println("progress")             // noprint: builtin writes to stderr
	fmt.Fprintln(os.Stdout, "done") // noprint: os.Stdout is process-global
}

// Shadow proves identifier resolution: these locals shadow the package
// names, so nothing here may be reported.
func Shadow() {
	time := clock{}
	time.Now()
	rand := clock{}
	rand.Intn()
	println := func(string) {}
	println("shadowed builtin")
}

type clock struct{}

func (clock) Now()  {}
func (clock) Intn() {}
