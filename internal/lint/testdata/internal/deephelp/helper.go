// Package deephelp holds the helpers the transitive-determinism seeds in
// package deepdet reach. Crucially, this package is NOT in the per-file
// determinism rule's package set: only whole-program reachability from a
// //mepipe:deterministic entry point can flag the sinks below.
package deephelp

import "time"

// Stamp reads the wall clock. Reachable from deepdet.Entry through
// deepdet.middle — a two-hop cross-package chain.
func Stamp() int {
	return time.Now().Nanosecond()
}

// Ticker implements deepdet.Source. Tick's timer sink is reached through
// interface dispatch, exercising the analyzer's name+arity method
// fallback (the call site's static type is only the interface).
type Ticker struct{}

// Tick waits on a timer.
func (Ticker) Tick() int {
	<-time.After(0)
	return 0
}

// Waiter's Wait is only ever invoked through a bound method value,
// exercising the dynamic-call fallback over address-taken functions.
type Waiter struct{}

// Wait sleeps.
func (Waiter) Wait() int {
	time.Sleep(0)
	return 1
}

// Pure is reachable from the same entries and must stay undiagnosed.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}
