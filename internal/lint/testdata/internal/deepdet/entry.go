// Package deepdet seeds the transitive-determinism analyzer. No function
// here touches the clock directly — every sink lives in package deephelp,
// and every diagnostic must carry the call chain that reaches it.
package deepdet

import "mepipe/internal/lint/testdata/internal/deephelp"

// Source is the dispatch interface whose only implementation lives in
// deephelp.
type Source interface{ Tick() int }

// Entry is a deterministic entry point; the wall-clock read it reaches is
// two hops away in another package.
//
//mepipe:deterministic
func Entry() int {
	return middle(3)
}

func middle(n int) int {
	return deephelp.Stamp() + deephelp.Pure(n, 0)
}

// Dispatch reaches a timer through interface dispatch: the static callee
// is Source.Tick, the sink is in deephelp.Ticker.Tick.
//
//mepipe:deterministic
func Dispatch(s Source) int {
	return s.Tick()
}

// Sample reaches a sleep through a bound method value: the call is
// dynamic, resolved by the address-taken fallback.
//
//mepipe:deterministic
func Sample(w deephelp.Waiter) int {
	f := w.Wait
	return f()
}
