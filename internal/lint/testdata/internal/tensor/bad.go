// Package tensor mirrors internal/tensor under testdata: the raw go
// statement below is the gospawn seed violation for the kernel-pool
// extension of the rule.
package tensor

import "sync"

// Leak launches a kernel worker without a registered chokepoint.
func Leak(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // gospawn: raw go statement
		defer wg.Done()
	}()
}
