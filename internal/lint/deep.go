package lint

import (
	"go/ast"
	"sort"
)

// deepRules are the whole-program analyzers. Unlike the per-file rules
// they see the module-wide call graph, so a violation can live in a
// package the per-file rules never gate — reachability is what matters,
// and every diagnostic carries the call chain that proves it.
var deepRules = []struct {
	name string
	run  func(p *Program, report func(Diagnostic))
}{
	{name: "transitive-determinism", run: checkTransitiveDeterminism},
	{name: "hotpath-alloc", run: checkHotpathAlloc},
	{name: "ctxflow", run: checkCtxFlow},
}

// deepRoots returns the annotated roots for one analyzer in stable name
// order, so chains are reproducible run to run.
func deepRoots(p *Program, want func(*FuncNode) bool) []*FuncNode {
	var roots []*FuncNode
	for _, n := range p.funcs {
		if want(n) {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].name < roots[j].name })
	return roots
}

// checkTransitiveDeterminism proves that no function reachable from a
// //mepipe:deterministic entry point touches the wall clock or the global
// math/rand stream — including through helpers in packages the per-file
// determinism rule never visits. Each sink is reported once, with the
// shortest call chain (BFS) from the first root that reaches it.
func checkTransitiveDeterminism(p *Program, report func(Diagnostic)) {
	seen := map[string]bool{}
	for _, root := range deepRoots(p, func(n *FuncNode) bool { return n.deterministic }) {
		p.reach(root, nil, func(n *FuncNode, chain []string) {
			for _, f := range n.detSinks {
				pos := p.position(f.pos)
				key := pos.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				report(Diagnostic{
					Rule:  "transitive-determinism",
					Pos:   pos,
					Msg:   f.msg + ", reachable from a deterministic entry point" + chainSuffix(chain),
					Chain: chain,
				})
			}
		})
	}
}

// checkHotpathAlloc proves the zero-allocation property statically: no
// function reachable from a //mepipe:hotpath root may contain an
// allocating construct, except through a //mepipe:coldalloc function —
// the audited escape hatch for pool misses and first-touch growth, whose
// body and callees are excluded from the proof.
func checkHotpathAlloc(p *Program, report func(Diagnostic)) {
	seen := map[string]bool{}
	for _, root := range deepRoots(p, func(n *FuncNode) bool { return n.hotpath }) {
		p.reach(root, func(n *FuncNode) bool { return n.coldalloc }, func(n *FuncNode, chain []string) {
			if n.coldalloc {
				return
			}
			for _, f := range n.allocs {
				pos := p.position(f.pos)
				key := pos.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				report(Diagnostic{
					Rule:  "hotpath-alloc",
					Pos:   pos,
					Msg:   f.msg + " on a mepipe:hotpath" + chainSuffix(chain),
					Chain: chain,
				})
			}
		})
	}
}

// ctxFlowPkg gates the context-flow analyzer to the layers whose exported
// API promises cancellation: the planning server, the strategy facade,
// and the schedule optimizer.
func ctxFlowPkg(rel string) bool {
	return pkgUnder("internal/serve")(rel) ||
		pkgUnder("internal/strategy")(rel) ||
		pkgUnder("internal/opt")(rel)
}

// checkCtxFlow verifies that exported ctx-taking functions in the gated
// packages thread their context: a call to a module function that
// accepts a context must pass a value derived from the ctx parameter,
// and context.Background()/context.TODO() may not manufacture a fresh
// root inside such a function.
func checkCtxFlow(p *Program, report func(Diagnostic)) {
	for _, n := range p.funcs {
		if !ctxFlowPkg(n.pkg.rel) || n.decl.Body == nil || !n.decl.Name.IsExported() {
			continue
		}
		ctxName, ok := ctxParamName(n.file, n.decl.Type)
		if !ok {
			continue
		}
		targets := map[*ast.CallExpr]*FuncNode{}
		for _, c := range n.calls {
			if c.target != nil && c.call != nil {
				targets[c.call] = c.target
			}
		}
		tainted := taintedIdents(n.decl.Body, ctxName)
		checkCtxBody(p, n, n.decl.Body, tainted, targets, report)
	}
}

// ctxParamName finds the declared name of a context.Context parameter;
// ok is false when there is none, or it is unnamed/blank (nothing to
// thread).
func ctxParamName(pf *progFile, ft *ast.FuncType) (string, bool) {
	if ft.Params == nil {
		return "", false
	}
	for _, fld := range ft.Params.List {
		if !isCtxType(pf, fld.Type) {
			continue
		}
		if len(fld.Names) == 0 || fld.Names[0].Name == "_" {
			return "", false
		}
		return fld.Names[0].Name, true
	}
	return "", false
}

// hasCtxParam reports whether the function declares any context.Context
// parameter.
func hasCtxParam(n *FuncNode) bool {
	ft := n.decl.Type
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if isCtxType(n.file, fld.Type) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t spells context.Context in pf's namespace.
func isCtxType(pf *progFile, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pf.pkgPath(id) == "context"
}

// taintedIdents computes the identifiers carrying the caller's context:
// the ctx parameter itself plus anything assigned from an expression
// that mentions a tainted identifier (covers `cctx, cancel :=
// context.WithTimeout(ctx, d)` and re-bindings). Tracking is by name,
// not by scope, so a shadowing re-declaration keeps the name tainted;
// the Background/TODO ban covers the manufactured-root case that such
// shadowing could otherwise hide.
func taintedIdents(body *ast.BlockStmt, seed string) map[string]bool {
	t := map[string]bool{seed: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, r := range as.Rhs {
				if mentionsAny(r, t) {
					rhsTainted = true
					break
				}
			}
			if !rhsTainted {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" && !t[id.Name] {
					t[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}
	return t
}

// mentionsAny reports whether the expression mentions any tainted name.
func mentionsAny(e ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && tainted[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxBody walks one function body reporting context-flow violations.
// A nested function literal that declares its own context parameter is a
// fresh scope and is skipped; literals without one share the enclosing
// taint (the common `func() { ... }` goroutine body).
func checkCtxBody(p *Program, n *FuncNode, body ast.Node, tainted map[string]bool, targets map[*ast.CallExpr]*FuncNode, report func(Diagnostic)) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if _, ok := ctxParamName(n.file, x.Type); ok {
				return false
			}
			return true
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && n.file.pkgPath(id) == "context" &&
					(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") {
					report(Diagnostic{
						Rule: "ctxflow",
						Pos:  p.position(x.Pos()),
						Msg:  "context." + sel.Sel.Name + "() manufactures a fresh context inside exported ctx-taking " + n.name + "; thread the ctx parameter instead",
					})
					return true
				}
			}
			callee := targets[x]
			if callee == nil || !hasCtxParam(callee) {
				return true
			}
			for _, a := range x.Args {
				if mentionsAny(a, tainted) {
					return true
				}
			}
			report(Diagnostic{
				Rule: "ctxflow",
				Pos:  p.position(x.Pos()),
				Msg:  "call to " + callee.name + " accepts a context but " + n.name + " does not pass its ctx; thread it so cancellation propagates",
			})
		}
		return true
	})
}
