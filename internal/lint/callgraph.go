package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callSite is one call expression inside a function body, classified at
// scan time. Exactly one of the target kinds is set:
//
//   - target:       resolved module-internal function or method
//   - extPkg:       call into an external (non-module) package
//   - fallbackName: unresolved method call (interface dispatch, embedded
//     promotion, or a receiver whose type checking failed); the graph
//     links every in-module method with this name and a compatible arity
//   - dynamic:      call through a function value; the graph links every
//     address-taken module function with a compatible arity
type callSite struct {
	pos  token.Pos
	call *ast.CallExpr
	args int

	target       *FuncNode
	extPkg       string
	extName      string
	fallbackName string
	dynamic      bool
}

// detSinkNames are the time package selectors that read or schedule
// against the wall clock. Mentioning one at all is a sink: assigning
// time.After to a variable hides the call site from a call-only scan.
var detSinkNames = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allocPkgs are external packages whose exported calls are assumed to
// allocate (or to do I/O, which has no business on a hot path). Calls
// into any other external package — math, sync/atomic, runtime — are
// assumed allocation-free.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"bytes": true, "sort": true, "os": true, "io": true, "bufio": true,
	"log": true, "math/rand": true, "time": true, "context": true,
	"encoding/json": true, "regexp": true, "reflect": true, "sync": true,
}

// scanProgram fills every FuncNode's call sites, determinism sinks,
// allocation facts, and address-taken flags. Function literals are
// inlined into their enclosing declaration: their calls and sinks count
// against it, which over-approximates (a stored closure may never run)
// but never misses a reachable sink.
func scanProgram(p *Program) {
	for _, n := range p.funcs {
		if n.decl.Body != nil {
			sc := &scanner{prog: p, node: n, appendTargets: appendTargets(n.decl.Body)}
			sc.walk(n.decl.Body, false)
		}
	}
	p.finalizeGraph()
}

// scanner walks one function body.
type scanner struct {
	prog          *Program
	node          *FuncNode
	appendTargets map[*ast.CallExpr]string
}

// appendTargets maps each `lhs = append(arg0, ...)` call in body to the
// text of its single assignment target, so the walk can recognize the
// amortized self-append idiom.
func appendTargets(body *ast.BlockStmt) map[*ast.CallExpr]string {
	out := map[*ast.CallExpr]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			out[call] = types.ExprString(as.Lhs[0])
		}
		return true
	})
	return out
}

// walk visits n and its children. inPanic marks subtrees that are
// arguments to panic(): a panicking process is off every hot path, so
// allocation facts there are suppressed (determinism sinks are not —
// formatting a panic message must still not read the clock).
func (s *scanner) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			s.call(x, inPanic)
			return false // children visited by s.call with updated flags
		case *ast.FuncLit:
			s.alloc(x.Pos(), "closure (func literal) allocates", inPanic)
			s.walk(x.Body, inPanic)
			return false
		case *ast.SelectorExpr:
			s.selector(x)
			s.markAddrTaken(x.Sel)
			if id, ok := x.X.(*ast.Ident); ok {
				if s.filePkg(id) == "" {
					s.markAddrTaken(id)
				}
				return false
			}
			return true
		case *ast.Ident:
			s.markAddrTaken(x)
			return true
		case *ast.CompositeLit:
			s.composite(x, inPanic)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					s.alloc(x.Pos(), "&"+types.ExprString(cl.Type)+"{...} escapes to the heap", inPanic)
					for _, elt := range cl.Elts {
						s.walk(elt, inPanic)
					}
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if x.Op == token.ADD && s.isString(x.X) {
				s.alloc(x.Pos(), "string concatenation allocates", inPanic)
			}
			return true
		case *ast.AssignStmt:
			s.assign(x, inPanic)
			return false
		}
		return true
	})
}

// call classifies one call expression, records sinks/allocs, and recurses
// into the argument list.
func (s *scanner) call(call *ast.CallExpr, inPanic bool) {
	argPanic := inPanic
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch s.builtinName(fun) {
		case "panic":
			argPanic = true
		case "make":
			s.alloc(call.Pos(), "make("+types.ExprString(call.Args[0])+") allocates", inPanic)
		case "new":
			s.alloc(call.Pos(), "new("+types.ExprString(call.Args[0])+") allocates", inPanic)
		case "append":
			if !s.selfAppend(call) {
				s.alloc(call.Pos(), "append into a different slice may grow and allocate; amortized self-append (x = append(x, ...)) is exempt", inPanic)
			}
		case "print", "println":
			// noprint handles the diagnostic; not an alloc fact.
		case "":
			s.identCall(fun, call)
		}
	case *ast.SelectorExpr:
		s.selector(fun)
		s.selectorCall(fun, call, inPanic)
	case *ast.FuncLit:
		s.alloc(fun.Pos(), "closure (func literal) allocates", inPanic)
		s.walk(fun.Body, inPanic)
	case *ast.ArrayType:
		s.alloc(call.Pos(), types.ExprString(fun)+"(...) conversion allocates", inPanic)
	case *ast.MapType, *ast.ChanType, *ast.StarExpr, *ast.InterfaceType, *ast.FuncType:
		// Type conversion: no call edge, no allocation.
	default:
		s.walk(call.Fun, inPanic)
		s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), dynamic: true})
	}
	for _, a := range call.Args {
		s.walk(a, argPanic)
	}
}

// identCall handles f(...) where f is a plain identifier: a same-package
// function, a local function value, or a type conversion.
func (s *scanner) identCall(id *ast.Ident, call *ast.CallExpr) {
	if info := s.node.pkg.info; info != nil {
		switch obj := info.Uses[id].(type) {
		case *types.Func:
			if tn := s.prog.byObj[obj]; tn != nil {
				s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), target: tn})
				return
			}
			s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), extPkg: objPkgPath(obj), extName: id.Name})
			return
		case *types.TypeName:
			if id.Name == "string" {
				s.alloc(call.Pos(), "string(...) conversion allocates", false)
			}
			return // type conversion, not a call
		case *types.Var:
			s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), dynamic: true})
			return
		}
	}
	if tn := s.node.pkg.funcsByName[id.Name]; tn != nil {
		s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), target: tn})
		return
	}
	if id.Name == "string" {
		s.alloc(call.Pos(), "string(...) conversion allocates", false)
		return
	}
	s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), dynamic: true})
}

// selectorCall handles x.F(...): package-qualified functions, resolved
// methods, and the interface-dispatch fallback.
func (s *scanner) selectorCall(sel *ast.SelectorExpr, call *ast.CallExpr, inPanic bool) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if path := s.filePkg(id); path != "" {
			s.pkgQualified(path, sel, call, inPanic)
			return
		}
	}
	s.walk(sel.X, inPanic)
	// Method call. Precise when type checking resolved the selection to a
	// concrete in-module method; otherwise fall back to name+arity.
	if info := s.node.pkg.info; info != nil {
		if selinfo, ok := info.Selections[sel]; ok && selinfo.Kind() == types.MethodVal {
			if tn := s.prog.byObj[selinfo.Obj()]; tn != nil {
				s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), target: tn})
				return
			}
			if fn, ok := selinfo.Obj().(*types.Func); ok && objPkgPath(fn) != "" && !s.inModule(objPkgPath(fn)) {
				s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), extPkg: objPkgPath(fn), extName: sel.Sel.Name})
				return
			}
		}
	}
	s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), fallbackName: sel.Sel.Name})
}

// pkgQualified handles pkg.F(...) where pkg names an imported package.
func (s *scanner) pkgQualified(path string, sel *ast.SelectorExpr, call *ast.CallExpr, inPanic bool) {
	if rel, ok := s.prog.relOf(path); ok {
		if tp := s.prog.byRel[rel]; tp != nil {
			if tn := tp.funcsByName[sel.Sel.Name]; tn != nil {
				s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), target: tn})
				return
			}
		}
		// In-module package but unknown name: a conversion or a var.
		s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), dynamic: true})
		return
	}
	if path == "math/rand" && sel.Sel.Name != "New" && sel.Sel.Name != "NewSource" {
		s.sink(call.Pos(), "rand."+sel.Sel.Name+" draws from the global math/rand stream")
	}
	if allocPkgs[path] {
		base := path
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		s.alloc(call.Pos(), base+"."+sel.Sel.Name+" allocates (external call into an allocating package)", inPanic)
	}
	s.addSite(callSite{pos: call.Pos(), call: call, args: len(call.Args), extPkg: path, extName: sel.Sel.Name})
}

// selector records determinism sinks for any mention of a timer API —
// not just calls, so `f := time.After` cannot hide the sink.
func (s *scanner) selector(sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if s.filePkg(id) == "time" && detSinkNames[sel.Sel.Name] {
		s.sink(sel.Pos(), "time."+sel.Sel.Name+" reaches the wall clock")
	}
}

// composite records allocation facts for slice and map literals (struct
// values stay on the stack unless their address escapes, which the
// UnaryExpr case catches).
func (s *scanner) composite(cl *ast.CompositeLit, inPanic bool) {
	switch t := cl.Type.(type) {
	case *ast.ArrayType:
		if t.Len == nil {
			s.alloc(cl.Pos(), "slice literal allocates", inPanic)
		}
	case *ast.MapType:
		s.alloc(cl.Pos(), "map literal allocates", inPanic)
	}
}

// assign handles assignment statements so self-append (x = append(x, ...))
// can be recognized before the general call walk fires.
func (s *scanner) assign(as *ast.AssignStmt, inPanic bool) {
	for _, rhs := range as.Rhs {
		s.walk(rhs, inPanic)
	}
	for _, lhs := range as.Lhs {
		s.walk(lhs, inPanic)
	}
}

// selfAppend reports whether call is the amortized-growth idiom
// x = append(x, ...): growth re-uses capacity in steady state, so the
// hot-path proof exempts it. The idiom is recognized textually — the
// statement's sole assignment target must print identically to the
// call's first argument.
func (s *scanner) selfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	target := s.appendTargets[call]
	return target != "" && target == types.ExprString(call.Args[0])
}

// --- scanner bookkeeping -------------------------------------------------

func (s *scanner) addSite(site callSite) {
	s.node.calls = append(s.node.calls, site)
}

func (s *scanner) sink(pos token.Pos, msg string) {
	s.node.detSinks = append(s.node.detSinks, fact{pos: pos, msg: msg})
}

func (s *scanner) alloc(pos token.Pos, msg string, inPanic bool) {
	if inPanic {
		return
	}
	s.node.allocs = append(s.node.allocs, fact{pos: pos, msg: msg})
}

// filePkg resolves an identifier to an imported package path ("" if it
// is not a package qualifier).
func (s *scanner) filePkg(id *ast.Ident) string {
	return s.node.file.pkgPath(id)
}

// builtinName returns the name if id resolves to a builtin (or, with no
// type info, if it textually matches one and is not shadowed — without
// type info we accept the small risk of a shadowed `make`).
func (s *scanner) builtinName(id *ast.Ident) string {
	if info := s.node.pkg.info; info != nil {
		if obj, ok := info.Uses[id]; ok {
			if _, isB := obj.(*types.Builtin); isB {
				return id.Name
			}
			return ""
		}
	}
	switch id.Name {
	case "panic", "make", "new", "append", "print", "println":
		return id.Name
	}
	return ""
}

// isString reports whether e is string-typed (via type info, falling
// back to string literals).
func (s *scanner) isString(e ast.Expr) bool {
	if info := s.node.pkg.info; info != nil {
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			b, ok := tv.Type.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsString != 0
		}
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// inModule reports whether path is inside this module.
func (s *scanner) inModule(path string) bool {
	_, ok := s.prog.relOf(path)
	return ok
}

// markAddrTaken flags module functions referenced as values (outside call
// position — the walk only reaches here for non-call uses).
func (s *scanner) markAddrTaken(id *ast.Ident) {
	info := s.node.pkg.info
	if info == nil {
		return
	}
	obj, ok := info.Uses[id]
	if !ok {
		return
	}
	if tn := s.prog.byObj[obj]; tn != nil {
		tn.refTaken = true
	}
}

func objPkgPath(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// --- graph traversal -----------------------------------------------------

// successors resolves a node's call sites to FuncNode edges, deduplicated
// and in deterministic order: static targets in source order, then
// fallback/dynamic candidates sorted by display name.
func (p *Program) successors(n *FuncNode) []*FuncNode {
	if n.succCache != nil {
		return n.succCache
	}
	seen := map[*FuncNode]bool{}
	visible := p.importClosure(n.pkg)
	var static, fuzzy []*FuncNode
	add := func(list *[]*FuncNode, t *FuncNode) {
		if t != nil && !seen[t] {
			seen[t] = true
			*list = append(*list, t)
		}
	}
	for _, c := range n.calls {
		switch {
		case c.target != nil:
			add(&static, c.target)
		case c.fallbackName != "":
			for _, m := range p.methodsByName[c.fallbackName] {
				if m.arityCompatible(c.args) && visible[m.pkg.rel] {
					add(&fuzzy, m)
				}
			}
		case c.dynamic:
			for _, f := range p.addrTaken {
				if f.arityCompatible(c.args) && visible[f.pkg.rel] {
					add(&fuzzy, f)
				}
			}
		}
	}
	sort.Slice(fuzzy, func(i, j int) bool { return fuzzy[i].name < fuzzy[j].name })
	n.succCache = append(static, fuzzy...)
	return n.succCache
}

// finalizeGraph computes the address-taken set once scanning is done.
func (p *Program) finalizeGraph() {
	p.addrTaken = p.addrTaken[:0]
	for _, f := range p.funcs {
		if f.refTaken {
			p.addrTaken = append(p.addrTaken, f)
		}
	}
	sort.Slice(p.addrTaken, func(i, j int) bool { return p.addrTaken[i].name < p.addrTaken[j].name })
}

// reach walks the graph breadth-first from root, calling visit for every
// node reached (including root) with the call chain that reached it
// (root first). stop prunes traversal below a node without suppressing
// the visit of the node itself.
func (p *Program) reach(root *FuncNode, stop func(*FuncNode) bool, visit func(n *FuncNode, chain []string)) {
	type qent struct {
		n     *FuncNode
		chain []string
	}
	seen := map[*FuncNode]bool{root: true}
	queue := []qent{{n: root, chain: []string{root.name}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		visit(cur.n, cur.chain)
		if stop != nil && stop(cur.n) {
			continue
		}
		for _, succ := range p.successors(cur.n) {
			if seen[succ] {
				continue
			}
			seen[succ] = true
			chain := make([]string, len(cur.chain), len(cur.chain)+1)
			copy(chain, cur.chain)
			queue = append(queue, qent{n: succ, chain: append(chain, succ.name)})
		}
	}
}

// chainSuffix renders a call chain for a diagnostic message: the chain
// always starts at the annotated root, so even a direct violation names
// the entry point it taints.
func chainSuffix(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return " [via " + strings.Join(chain, " -> ") + "]"
}
