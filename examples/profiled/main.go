// profiled closes the paper's §6 loop on real hardware (this machine's
// CPU): the profiler measures the tiny decoder's actual layer times, fits
// the saturating throughput model, the scheduler generates a MEPipe
// schedule from the *measured* costs, the simulator predicts the iteration
// time, and the goroutine runtime then executes the schedule for real —
// prediction vs reality, end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/profile"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func main() {
	cfg := nn.Config{Hidden: 64, Heads: 4, FFN: 128, Vocab: 64, Layers: 8, SeqLen: 256}
	const (
		stages = 4
		slices = 4
		micros = 4
	)
	m, err := nn.NewModel(cfg, 7)
	fatal(err)

	// 1. Profile every (slice, op) at its true shape, like MEPipe's
	// profiler (§6) — the cache is grown to the slice's start position,
	// backwards run in reverse order with real gradients.
	table, err := profile.MeasureSliceOps(m, slices, cfg.Layers/stages, 5)
	fatal(err)
	fmt.Println("profiled per-slice times for one pipeline chunk (median of 5):")
	for i := 0; i < slices; i++ {
		fmt.Printf("  slice %d: fwd %8.1fµs  bAct %8.1fµs  W %8.1fµs\n",
			i, table.F[i]*1e6, table.BAct[i]*1e6, table.W[i]*1e6)
	}
	fmt.Printf("causal imbalance: last/first forward = %.2fx (the §5 effect, measured)\n\n",
		table.F[slices-1]/table.F[0])

	// 2. Schedule directly from the measured table.
	s, err := sched.MEPipe(stages, 1, slices, micros, 0, table.Pieces, table)
	fatal(err)

	// 3. Predict with the simulator over the same measured costs.
	pred, err := sim.Run(sim.Options{Sched: s, Costs: simCosts{table}})
	fatal(err)

	// 4. Execute for real.
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, 3)
	fatal(err)
	batch := stream.Batch(micros)
	var best time.Duration
	for trial := 0; trial < 3; trial++ {
		m.ZeroGrads()
		r, err := pipeline.New(m, s, batch)
		fatal(err)
		t0 := time.Now()
		if _, err := r.Run(); err != nil {
			fatal(err)
		}
		if d := time.Since(t0); trial == 0 || d < best {
			best = d
		}
	}
	fmt.Printf("schedule:  %s\n", s)
	fmt.Printf("predicted: %.1f ms per iteration (bubble %.1f%%)\n", pred.IterTime*1e3, 100*pred.BubbleRatio)
	fmt.Printf("measured:  %.1f ms per iteration (best of 3)\n", float64(best.Microseconds())/1e3)
	ratio := float64(best.Seconds()) / pred.IterTime
	fmt.Printf("reality/prediction: %.2fx\n", ratio)
	fmt.Println("\n(the gap is host-CPU contention: the profiler times each op alone, but the")
	fmt.Println(" four stage goroutines share this machine's memory bandwidth — on a real")
	fmt.Println(" cluster each stage owns its accelerator, which is what the simulator models;")
	fmt.Println(" the *relative* schedule structure, including the measured slice imbalance,")
	fmt.Println(" is what the generator consumed)")
}

// simCosts adapts the measured table to the simulator's interface with
// unit memory (memory is not the point of this example).
type simCosts struct{ *profile.OpTable }

func (simCosts) ActBytes(stage int, f sched.Op) int64  { return 1 }
func (simCosts) GradBytes(stage int, b sched.Op) int64 { return 1 }

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
