// costadvisor reproduces the paper's cost-effectiveness analysis (Table 9):
// given a model, it plans training on both the 64× RTX 4090 cluster and the
// 32× A100 cluster and reports where each dollar goes — the paper's
// democratization argument in one program.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"mepipe"
)

func main() {
	modelName := flag.String("model", "13b", "model preset: 7b, 13b, 34b")
	flag.Parse()
	model, err := mepipe.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	tr := mepipe.Training{GlobalBatch: 128, MicroBatch: 1}

	type result struct {
		name string
		cl   mepipe.Cluster
		eval *mepipe.Eval
	}
	clusters := []result{
		{"64x RTX 4090 (8 servers)", mepipe.RTX4090Cluster(8), nil},
		{"32x A100 80GB (4 servers)", mepipe.A100Cluster(4), nil},
	}
	for i := range clusters {
		best := (*mepipe.Eval)(nil)
		for _, sys := range mepipe.Systems() {
			res, err := mepipe.Search(context.Background(), sys, model, clusters[i].cl, tr, mepipe.DefaultSpace())
			if err != nil && res == nil {
				continue
			}
			if b := res.Best(); b != nil && (best == nil || b.IterTime < best.IterTime) {
				best = b
			}
		}
		if best == nil {
			log.Fatalf("no feasible strategy on %s", clusters[i].name)
		}
		clusters[i].eval = best
	}

	fmt.Printf("training %s, global batch %d, sequence %d\n\n", model.Name, tr.GlobalBatch, model.SeqLen)
	for _, c := range clusters {
		price := c.cl.Price()
		tokPerSec := float64(tr.GlobalBatch*model.SeqLen) / c.eval.IterTime
		fmt.Printf("%s  ($%.0fk)\n", c.name, price/1e3)
		fmt.Printf("  best system/strategy: %s %v\n", c.eval.Sys, c.eval.Par)
		fmt.Printf("  iteration: %.0f ms   throughput: %.0f tokens/s   %.1f TFLOPS/GPU\n",
			c.eval.IterTime*1e3, tokPerSec, c.eval.TFLOPSPerGPU(model, tr, c.cl.GPUs()))
		fmt.Printf("  tokens/s per $1k of hardware: %.1f\n\n", tokPerSec/(price/1e3))
	}
	g4090, a100 := clusters[0], clusters[1]
	ce := (a100.eval.IterTime * a100.cl.Price()) / (g4090.eval.IterTime * g4090.cl.Price())
	fmt.Printf("cost-effectiveness of the 4090 cluster: %.2fx (paper: ~2.5x)\n", ce)
}
