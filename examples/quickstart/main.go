// Quickstart: generate the paper's SVPP schedule for a small shape,
// simulate it with unit costs, and render the pipeline timeline — the
// fastest way to see slice-level scheduling (Fig 4) working.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mepipe"
)

func main() {
	// Fig 4(b): 4 pipeline stages, 2 virtual chunks per stage, each
	// sample split into 2 slices, 4 micro-batches.
	svpp, err := mepipe.NewSVPP(mepipe.SVPPOptions{
		P: 4, V: 2, S: 2, N: 4,
		Reschedule: true, // the Fig 6 backward-rescheduling optimisation
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mepipe.Simulate(context.Background(), svpp, mepipe.UnitCosts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SVPP %s\n", svpp)
	fmt.Printf("  bubble ratio: %.1f%%\n", 100*res.BubbleRatio)
	fmt.Printf("  peak activations: %d slice-chunk families (%d/16 of a sample, Fig 4b says 9/16)\n",
		res.PeakAct, res.PeakAct)
	fmt.Println()
	if err := mepipe.Export(os.Stdout, mepipe.ASCIITimeline{}, res); err != nil {
		log.Fatal(err)
	}

	// Compare against 1F1B on the same workload.
	dapple, err := mepipe.NewDAPPLE(4, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	dres, err := mepipe.Simulate(context.Background(), dapple, mepipe.UnitCosts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDAPPLE on the same workload: bubble %.1f%%, peak %d micro-batches of activations\n",
		100*dres.BubbleRatio, dres.PeakAct)
	fmt.Printf("SVPP holds %.0f%% less activation memory (per-family footprint is 1/%d of a micro-batch)\n",
		100*(1-float64(res.PeakAct)/4/float64(dres.PeakAct)), 4)
}
