// memvariants walks the §4.2 memory/bubble trade-off: it plans MEPipe for
// Llama 13B under progressively smaller artificial memory caps, showing how
// the SVPP variant knob f shrinks (Fig 5) and what each gigabyte saved
// costs in bubbles — the mechanism that lets MEPipe squeeze Llama 34B onto
// 24 GB cards (§7.4).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/memplan"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func main() {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	mesh, err := cluster.NewMesh(cl, par)
	fatal(err)
	costs, err := perf.New(m, mesh)
	fatal(err)
	plan, err := memplan.New(m, mesh)
	fatal(err)
	fam := costs.ActBytes(0, sched.Op{Kind: sched.F})
	grad := costs.GradBytes(0, sched.Op{Kind: sched.BAct})
	n := 8 // GBS 64 at DP 8

	fmt.Printf("%s at %v: one slice-chunk of activations = %.2f GiB\n", m.Name, par, float64(fam)/(1<<30))
	fmt.Printf("full per-stage activation budget: %.2f GiB\n\n", float64(plan.ActBudget[0])/(1<<30))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "memory cap\tvariant f\tpeak act\titeration\tbubble")
	for _, frac := range []float64{1.0, 0.8, 0.6, 0.45, 0.4} {
		budget := int64(float64(plan.ActBudget[0]) * frac)
		f, err := memplan.ChooseF(par, fam, grad, budget)
		if err != nil {
			fmt.Fprintf(w, "%.0f%%\t-\t-\t-\tno variant fits (%v)\n", 100*frac, err)
			continue
		}
		s, err := sched.SVPP(sched.SVPPOptions{
			P: par.PP, V: par.VP, S: par.SPP, N: n, F: f,
			Reschedule: true, Split: true, FineGrainedW: costs.WPieces(), Est: costs,
		})
		fatal(err)
		budgets := make([]int64, par.PP)
		for i := range budgets {
			budgets[i] = budget
		}
		res, err := sim.Run(sim.Options{
			Sched: s, Costs: costs, ActBudget: budgets, DynamicW: true, TailTime: costs.TailTime,
		})
		fatal(err)
		status := fmt.Sprintf("%.1f%%", 100*res.BubbleRatio)
		if res.OOM {
			status += " (OOM)"
		}
		fmt.Fprintf(w, "%.0f%% (%.1f GiB)\t%d\t%.1f GiB\t%.0f ms\t%s\n",
			100*frac, float64(budget)/(1<<30), f, float64(res.PeakAct)/(1<<30), res.IterTime*1e3, status)
	}
	fatal(w.Flush())
	fmt.Println("\nshrinking the cap lowers f: fewer forwards in flight, less memory, more bubbles (Fig 5)")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
