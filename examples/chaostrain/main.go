// chaostrain trains a tiny decoder on a pipeline that is actively being
// sabotaged: every training step, a seeded fault plan crashes one pipeline
// stage mid-iteration and drops the first delivery attempt on a flaky
// link. With stage-level checkpointing the runtime restores the crashed
// stage, replays the lost slice-level ops, retries the dropped frames —
// and every step's gradients still match sequential training exactly.
// This is §9's reliability story running, not estimated.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mepipe/internal/chaos"
	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

func main() {
	cfg := nn.Config{Hidden: 16, Heads: 2, FFN: 32, Vocab: 29, Layers: 8, SeqLen: 16}
	const (
		stages = 4
		slices = 2
		micros = 3
		steps  = 10
		seed   = 7
	)
	s, err := sched.SVPP(sched.SVPPOptions{P: stages, V: 1, S: slices, N: micros, Reschedule: true})
	if err != nil {
		log.Fatal(err)
	}
	piped, err := nn.NewModel(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := nn.NewModel(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule %s with one injected crash and one flaky link per step\n", s)

	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < steps; step++ {
		stage := rng.Intn(stages)
		at := 1 + rng.Intn(len(s.Stages[stage])-1)
		plan := chaos.Plan{
			Seed:    int64(seed + step),
			Crashes: []chaos.Crash{{Stage: stage, AtOp: at}},
			Flaky:   []chaos.FlakyLink{{From: rng.Intn(stages), To: rng.Intn(stages), FailFirst: 1}},
		}
		batch := stream.Batch(micros)
		piped.ZeroGrads()
		r, err := pipeline.New(piped, s, batch)
		if err != nil {
			log.Fatal(err)
		}
		rec := obs.NewRecorder()
		in := chaos.New(plan, stages)
		r.WithStageHook(in).WithTransport(in).WithCheckpointEvery(2).WithTrace(rec)
		loss, err := r.Run()
		if err != nil {
			log.Fatalf("step %d did not survive its faults: %v", step, err)
		}

		ref.ZeroGrads()
		refLoss, err := ref.TrainSequential(batch, slices)
		if err != nil {
			log.Fatal(err)
		}
		maxDiff := 0.0
		pg, rg := piped.Grads(), ref.Grads()
		for name, g := range rg {
			if d := tensor.MaxAbsDiff(g, pg[name]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-4 {
			log.Fatalf("step %d: recovered gradients diverge from sequential by %g", step, maxDiff)
		}
		var replayed, retries int
		for _, m := range rec.Trace().Snapshot().Stages {
			replayed += m.Replayed
			retries += m.Retries
		}
		piped.SGDStep(0.05)
		ref.SGDStep(0.05)
		fmt.Printf("step %2d  loss %.6f  crashed stage %d at op %2d  (replayed %d ops, %d retries, seq loss %.6f, max grad diff %.2g)\n",
			step, loss, stage, at, replayed, retries, refLoss, maxDiff)
	}
	fmt.Println("done: every faulty iteration recovered to sequential gradients")
}
