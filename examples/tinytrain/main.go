// tinytrain runs REAL slice-level pipelined training: a tiny Llama-style
// decoder partitioned across 4 goroutine pipeline stages executing the full
// MEPipe schedule — split backwards, fine-grained weight-gradient pieces
// filling bubbles — with actual float32 math, verified gradient-for-
// gradient against sequential training while the loss goes down.
//
// This is the correctness half of the reproduction: if a schedule were
// wrong (a missed KV dependency, a weight GEMM run before its backward,
// a slice out of order), this program would diverge or deadlock.
package main

import (
	"fmt"
	"log"

	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

func main() {
	cfg := nn.Config{Hidden: 16, Heads: 2, FFN: 32, Vocab: 29, Layers: 8, SeqLen: 16}
	const (
		stages = 4
		slices = 4
		micros = 4
		steps  = 15
	)
	// The full MEPipe schedule: SVPP + rescheduling + split backward +
	// 7-piece weight gradients.
	s, err := sched.MEPipe(stages, 1, slices, micros, 0, nn.WeightGradGEMMs, nil)
	if err != nil {
		log.Fatal(err)
	}
	piped, err := nn.NewModel(cfg, 1234)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := nn.NewModel(cfg, 1234) // identical weights
	if err != nil {
		log.Fatal(err)
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %s (%d ops per stage)\n", s, len(s.Stages[0]))
	fmt.Printf("model:    %d layers, hidden %d, %d-way sliced sequences of %d tokens\n\n",
		cfg.Layers, cfg.Hidden, slices, cfg.SeqLen)
	for step := 0; step < steps; step++ {
		batch := stream.Batch(micros)

		piped.ZeroGrads()
		r, err := pipeline.New(piped, s, batch)
		if err != nil {
			log.Fatal(err)
		}
		pipeLoss, err := r.Run()
		if err != nil {
			log.Fatal(err)
		}

		seq.ZeroGrads()
		seqLoss, err := seq.TrainSequential(batch, slices)
		if err != nil {
			log.Fatal(err)
		}

		maxDiff := 0.0
		pg, sg := piped.Grads(), seq.Grads()
		for name, g := range sg {
			if d := tensor.MaxAbsDiff(g, pg[name]); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("step %2d  pipelined loss %.6f  sequential loss %.6f  max grad diff %.2g\n",
			step, pipeLoss, seqLoss, maxDiff)
		if maxDiff > 1e-4 {
			log.Fatalf("gradient mismatch at step %d", step)
		}
		piped.SGDStep(0.05)
		seq.SGDStep(0.05)
	}
	fmt.Println("\npipelined slice-level training is gradient-equivalent to sequential training")
}
