// llama13b reproduces the paper's headline end-to-end comparison (Fig 8):
// Llama 13B on 64 RTX 4090s at global batch sizes 32/64/128, every system
// at its grid-searched optimum, using only the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"text/tabwriter"

	"os"

	"mepipe"
)

func main() {
	model := mepipe.Llama13B()
	cl := mepipe.RTX4090Cluster(8)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "GBS\tsystem\tbest strategy\titeration\tbubble\tspeedup")
	for _, gbs := range []int{32, 64, 128} {
		tr := mepipe.Training{GlobalBatch: gbs, MicroBatch: 1}
		type row struct {
			sys  mepipe.System
			eval *mepipe.Eval
		}
		var rows []row
		bestBaseline := 0.0
		for _, sys := range mepipe.Systems() {
			res, err := mepipe.Search(context.Background(), sys, model, cl, tr, mepipe.DefaultSpace())
			if err != nil && res == nil {
				log.Fatal(err)
			}
			best := res.Best()
			rows = append(rows, row{sys, best})
			if best != nil && sys != mepipe.MEPipe {
				if bestBaseline == 0 || best.IterTime < bestBaseline {
					bestBaseline = best.IterTime
				}
			}
		}
		for _, r := range rows {
			if r.eval == nil {
				fmt.Fprintf(w, "%d\t%s\tOOM\t\t\t\n", gbs, r.sys)
				continue
			}
			speedup := ""
			if r.sys == mepipe.MEPipe {
				speedup = fmt.Sprintf("%.2fx over best baseline", bestBaseline/r.eval.IterTime)
			}
			fmt.Fprintf(w, "%d\t%s\t%v\t%.0f ms\t%.1f%%\t%s\n",
				gbs, r.sys, r.eval.Par, r.eval.IterTime*1e3, 100*r.eval.Bubble, speedup)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper (Fig 8): MEPipe 1.86x / 1.49x / 1.36x at GBS 32 / 64 / 128")
}
