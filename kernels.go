package mepipe

import (
	"context"

	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/tensor"
)

// Kernel configuration. The live runtime's GEMMs run on a shared persistent
// worker pool with cache-tiled loops; work is partitioned by destination-row
// ownership, so results are bitwise identical for any worker count — the
// sim-vs-runtime equivalence guarantees are unaffected by parallelism. See
// docs/PERFORMANCE.md.
type KernelConfig = tensor.KernelConfig

// ConfigureKernels replaces the process-wide GEMM worker pool (worker count,
// tile sizes) and returns the resolved configuration. Zero fields select
// defaults (Workers: GOMAXPROCS). Call it at startup, not concurrently with
// running kernels.
func ConfigureKernels(cfg KernelConfig) KernelConfig { return tensor.Configure(cfg) }

// CurrentKernelConfig reports the shared pool's resolved configuration.
func CurrentKernelConfig() KernelConfig { return tensor.CurrentConfig() }

// WithKernelWorkers sets the GEMM worker count for calls that execute real
// tensor kernels (TrainPipelined). Pure simulation calls ignore it.
func WithKernelWorkers(n int) Option {
	return func(c *runConfig) { c.kernels = &tensor.KernelConfig{Workers: n} }
}

// The tiny numeric decoder the runtime trains (see internal/nn): the facade
// re-exports enough to build a model and drive real pipelined iterations.
type (
	DecoderConfig = nn.Config
	DecoderModel  = nn.Model
)

// NewDecoderModel builds a seeded decoder; identical seeds give identical
// weights on every stage, which is how the distributed workers stay in sync
// without a parameter broadcast.
var NewDecoderModel = nn.NewModel

// TrainPipelined executes one real (not simulated) training iteration of
// schedule s over the decoder m and batch, returning the mean loss.
// Gradients accumulate into m exactly as sequential training would produce
// them. WithTrace captures wall-clock op spans carrying per-op GEMM FLOPs
// and freshly-allocated bytes; WithKernelWorkers sizes the GEMM pool for the
// run.
func TrainPipelined(ctx context.Context, m *DecoderModel, s *Schedule, batch [][]int, opts ...Option) (float64, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	r, err := pipeline.New(m, s, batch)
	if err != nil {
		return 0, err
	}
	if c.sink != nil {
		r.WithTrace(c.sink)
	}
	if c.kernels != nil {
		r.WithKernels(*c.kernels)
	}
	return r.RunContext(ctx)
}
