#!/bin/sh
# E2 — SPP/CP profiling: per-layer throughput under both slicing strategies.
set -e
cd "$(dirname "$0")/.."
mkdir -p artifact/results
go run ./cmd/mepipe-bench -exp fig9 2>&1 | tee artifact/results/e2.txt
echo "E2 done; compare against artifact/e2_expected.md"
