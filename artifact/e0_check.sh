#!/bin/sh
# E0 smoke gate — runs e0_run.sh and machine-checks its transcript against
# the expectations of e0_expected.md (CI runs this; a human can still diff
# by eye). Exits non-zero on any missing marker.
set -e
cd "$(dirname "$0")"
sh e0_run.sh
out=results/e0.txt

fail() {
	echo "E0 CHECK FAILED: $1" >&2
	exit 1
}

[ -f "$out" ] || fail "no transcript at $out"

if grep -q '^--- FAIL\|^FAIL' "$out"; then
	fail "test failures in transcript"
fi

# Every scheduler's equivalence subtest must have passed.
for s in gpipe dapple vpp hanayo terapipe zb1p zbv svpp svpp-v2 mepipe mepipe-v2 mepipe-minmem; do
	grep -q -- "--- PASS: TestEverySchedulerMatchesSequential/$s" "$out" \
		|| fail "no PASS for scheduler $s"
done
grep -q -- "--- PASS: TestSVPPPropertyEquivalence" "$out" \
	|| fail "no PASS for TestSVPPPropertyEquivalence"

# Both live training runs (channels, then TCP) must verify every step.
n=$(grep -c "done: pipelined training matches sequential execution" "$out") || true
[ "$n" -eq 2 ] || fail "expected 2 verified training runs, saw $n"

# Go's %.2g prints tiny diffs as 0 or with a two-digit exponent (1.2e-07).
if grep "max grad diff" "$out" | grep -qv "max grad diff \(0\|[0-9.]*e-\(0[5-9]\|[1-9][0-9]\)\)"; then
	fail "a training step reported a gradient diff above 1e-5"
fi

echo "E0 check passed: transcript matches e0_expected.md"
