#!/bin/sh
# E0 — functionality: pipelined execution is gradient-equivalent to
# sequential execution for every scheduler (the repo's pipeline test suite),
# then live training with per-step verification over TCP links.
set -e
cd "$(dirname "$0")/.."
mkdir -p artifact/results
{
	go test -v -run 'TestEverySchedulerMatchesSequential|TestSVPPPropertyEquivalence' ./internal/pipeline/
	go run ./cmd/mepipe-train -steps 5 -verify
	go run ./cmd/mepipe-train -steps 3 -verify -transport tcp
} 2>&1 | tee artifact/results/e0.txt
echo "E0 done; compare against artifact/e0_expected.md"
