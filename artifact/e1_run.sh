#!/bin/sh
# E1 — end-to-end: Fig 8 (Llama 13B across global batch sizes) and the
# Table 5 optimal configurations.
set -e
cd "$(dirname "$0")/.."
mkdir -p artifact/results
go run ./cmd/mepipe-bench -exp fig8 2>&1 | tee artifact/results/e1.txt
go run ./cmd/mepipe-bench -exp table5 2>&1 | tee -a artifact/results/e1.txt
echo "E1 done; compare against artifact/e1_expected.md"
