# MEPipe reproduction — common workflows.

GO ?= go

.PHONY: all build test vet lint lint-json verify-presets race-hot race bench bench-kernels bench-smoke bench-serve bench-opt bench-sim bench-sweep serve-smoke opt-smoke sim-smoke sweep-smoke opt-regen report figures artifact check ci smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate plus the repo-invariant analyzers (docs/VERIFICATION.md):
# fails when gofmt would change anything or mepipe-lint finds a violation
# the allowlist does not sanction. Whole-module runs include the
# interprocedural analyzers (transitive-determinism, hotpath-alloc,
# ctxflow) and the allowlist staleness check.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) run ./cmd/mepipe-lint ./...

# The same analyzers in machine-readable form: one JSON object per
# diagnostic (rule, file, line, col, msg, chain) — what the lint-deep CI
# job feeds through the GitHub problem matcher.
lint-json:
	$(GO) run ./cmd/mepipe-lint -json ./...

# The static certifier against every schedule preset: proves the
# svpp/mepipe/vpp families deadlock-free and within their analytic
# per-stage activation bounds across pipeline depths.
verify-presets:
	$(GO) test ./internal/verify -run Presets

# The concurrency-sensitive packages (goroutine runtime with
# crash-recovery, parallel GEMM kernels + scratch arena, shared trace
# sinks, fault injector) under the race detector — fast enough for
# every commit.
race-hot:
	$(GO) test -race ./internal/pipeline/... ./internal/obs/... ./internal/chaos/... ./internal/tensor/... ./internal/nn/... ./internal/opt/...

# Everything under the race detector — what the CI race job runs.
race:
	$(GO) test -race ./...

# The default pre-commit gate.
check: build vet test race-hot

# Artifact smoke: E0 end to end against its expected-results file, plus
# the chaos CLI's Young–Daly verdict.
smoke:
	sh artifact/e0_check.sh
	$(GO) run ./cmd/mepipe-chaos

# Planning-server smoke (docs/SERVE.md): boots mepipe-serve on an
# ephemeral port in-process, proves a /v1/search answers certified, the
# identical repeat is a cache hit, and the stats reflect both.
serve-smoke:
	$(GO) run ./cmd/mepipe-serve -selfcheck

# Planning-server load benchmark: drives an in-process server with
# concurrent clients and regenerates the machine-readable latency/cache
# baseline (BENCH_serve.json) future PRs regress against.
bench-serve:
	$(GO) run ./cmd/mepipe-bench -serve-load -serve-out $(CURDIR)/BENCH_serve.json

# Optimizer smoke (docs/OPTIMIZER.md): a short fixed-seed annealing run,
# the discovered-schedule regression gate — the checked-in schedule under
# internal/opt/testdata must re-certify, re-simulate to its recorded
# time, and still beat its recorded preset baseline — and a one-round
# replay of the BENCH_opt harness.
opt-smoke:
	$(GO) test ./internal/opt -run 'TestDiscoveredBeatsPresets|TestOptimizeSmoke' -count=1
	$(GO) run ./cmd/mepipe-bench -opt -opt-iters 1 -opt-out $(CURDIR)/BENCH_opt_smoke.json

# Optimizer throughput benchmark: replays the checked-in artifact's full
# optimization (same point, same seed — the replay rediscovers the
# recorded schedule exactly) and regenerates the machine-readable
# baseline (BENCH_opt.json) future PRs regress against.
bench-opt:
	$(GO) run ./cmd/mepipe-bench -opt -opt-out $(CURDIR)/BENCH_opt.json

# Regenerate the checked-in discovered-schedule artifact. The writer
# refuses to record a schedule that does not beat the preset sweep.
opt-regen:
	$(GO) test ./internal/opt -run TestWriteDiscovered -write-discovered

# Simulator fast-path smoke (docs/PERFORMANCE.md): the bitwise
# session/batch equivalence tables and edge-case regressions, a short run
# of the differential fuzzer, the discovered-artifact session replay
# gate, and a small -sim bench pass (which cross-checks every candidate
# bitwise before timing).
sim-smoke:
	$(GO) test ./internal/sim -run 'TestSession|TestEvaluate|TestDynamicOOM|TestStats|TestTraceWait' -count=1
	$(GO) test ./internal/sim -run NONE -fuzz FuzzIncrementalEquivalence -fuzztime 10s
	$(GO) test ./internal/opt -run TestDiscoveredReplaysThroughSession -count=1
	$(GO) run ./cmd/mepipe-bench -sim -sim-candidates 64 -sim-out $(CURDIR)/BENCH_sim_smoke.json

# Simulator throughput benchmark: measures candidate-evaluation rates of
# the full replay, the incremental session, and batched EvaluateMany on
# the artifact's canonical point, and regenerates the machine-readable
# baseline (BENCH_sim.json) future PRs regress against.
bench-sim:
	$(GO) run ./cmd/mepipe-bench -sim -sim-out $(CURDIR)/BENCH_sim.json

# Sweep-engine smoke (docs/PERFORMANCE.md): the golden equivalence suite
# (sweep vs sequential vs frozen reference at 8/16/32 GPUs, ±prune, and
# mid-sweep cancellation), the /v1/sweep wire tests, and a short -sweep
# bench pass (which cross-checks every candidate bitwise against the
# frozen pre-sweep path before timing).
sweep-smoke:
	$(GO) test ./internal/strategy -run 'TestSweep|TestSearchReference' -count=1
	$(GO) test ./internal/serve ./api/v1 -run 'Sweep' -count=1
	$(GO) run ./cmd/mepipe-bench -sweep -sweep-min-s 0.5 -sweep-out $(CURDIR)/BENCH_sweep_smoke.json

# Sweep-engine throughput benchmark: measures multi-system grid-search
# rates of the streaming sweep engine against the frozen pre-sweep path
# live in the same process, and regenerates the machine-readable
# baseline (BENCH_sweep.json) future PRs regress against.
bench-sweep:
	$(GO) run ./cmd/mepipe-bench -sweep -sweep-min-s 4 -sweep-out $(CURDIR)/BENCH_sweep.json

# Mirror of the GitHub Actions pipeline (.github/workflows/ci.yml).
ci: build vet test lint verify-presets race-hot bench-smoke serve-smoke opt-smoke sim-smoke sweep-smoke smoke

bench:
	$(GO) test -bench=. -benchmem .

# Kernel micro-benchmarks: regenerate the machine-readable perf baseline
# (BENCH_kernels.json) future PRs regress against, then print the suite.
bench-kernels:
	$(GO) test ./internal/tensor -run TestWriteKernelBaseline -args -bench-json=$(CURDIR)/BENCH_kernels.json
	$(GO) test ./internal/tensor -run NONE -bench 'BenchmarkKernels|BenchmarkMatMul256'

# One-iteration smoke of the kernel benchmarks (CI: proves they run).
bench-smoke:
	$(GO) test ./internal/tensor -run NONE -bench BenchmarkKernels -benchtime 1x
	$(GO) test ./internal/nn -run NONE -bench BenchmarkTrainStep -benchtime 1x

# Regenerate every paper table/figure as text.
eval:
	$(GO) run ./cmd/mepipe-bench

# Self-contained HTML report with embedded timelines.
report:
	$(GO) run ./cmd/mepipe-report -o report.html

# The Figs 2-7 schedule gallery.
figures:
	$(GO) run ./cmd/mepipe-figures > docs/SCHEDULES.md

# The paper's artifact workflow (E0/E1/E2).
artifact:
	cd artifact && sh e0_run.sh && sh e1_run.sh && sh e2_run.sh

clean:
	rm -f report.html artifact/results/*.txt BENCH_opt_smoke.json BENCH_sim_smoke.json BENCH_sweep_smoke.json
