# MEPipe reproduction — common workflows.

GO ?= go

.PHONY: all build test vet lint verify-presets race-hot race bench bench-kernels bench-smoke bench-serve serve-smoke report figures artifact check ci smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate plus the repo-invariant analyzers (docs/VERIFICATION.md):
# fails when gofmt would change anything or mepipe-lint finds a violation
# the allowlist does not sanction.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) run ./cmd/mepipe-lint ./...

# The static certifier against every schedule preset: proves the
# svpp/mepipe/vpp families deadlock-free and within their analytic
# per-stage activation bounds across pipeline depths.
verify-presets:
	$(GO) test ./internal/verify -run Presets

# The concurrency-sensitive packages (goroutine runtime with
# crash-recovery, parallel GEMM kernels + scratch arena, shared trace
# sinks, fault injector) under the race detector — fast enough for
# every commit.
race-hot:
	$(GO) test -race ./internal/pipeline/... ./internal/obs/... ./internal/chaos/... ./internal/tensor/... ./internal/nn/...

race:
	$(GO) test -race ./internal/...

# The default pre-commit gate.
check: build vet test race-hot

# Artifact smoke: E0 end to end against its expected-results file, plus
# the chaos CLI's Young–Daly verdict.
smoke:
	sh artifact/e0_check.sh
	$(GO) run ./cmd/mepipe-chaos

# Planning-server smoke (docs/SERVE.md): boots mepipe-serve on an
# ephemeral port in-process, proves a /v1/search answers certified, the
# identical repeat is a cache hit, and the stats reflect both.
serve-smoke:
	$(GO) run ./cmd/mepipe-serve -selfcheck

# Planning-server load benchmark: drives an in-process server with
# concurrent clients and regenerates the machine-readable latency/cache
# baseline (BENCH_serve.json) future PRs regress against.
bench-serve:
	$(GO) run ./cmd/mepipe-bench -serve-load -serve-out $(CURDIR)/BENCH_serve.json

# Mirror of the GitHub Actions pipeline (.github/workflows/ci.yml).
ci: build vet test lint verify-presets race-hot bench-smoke serve-smoke smoke

bench:
	$(GO) test -bench=. -benchmem .

# Kernel micro-benchmarks: regenerate the machine-readable perf baseline
# (BENCH_kernels.json) future PRs regress against, then print the suite.
bench-kernels:
	$(GO) test ./internal/tensor -run TestWriteKernelBaseline -args -bench-json=$(CURDIR)/BENCH_kernels.json
	$(GO) test ./internal/tensor -run NONE -bench 'BenchmarkKernels|BenchmarkMatMul256'

# One-iteration smoke of the kernel benchmarks (CI: proves they run).
bench-smoke:
	$(GO) test ./internal/tensor -run NONE -bench BenchmarkKernels -benchtime 1x
	$(GO) test ./internal/nn -run NONE -bench BenchmarkTrainStep -benchtime 1x

# Regenerate every paper table/figure as text.
eval:
	$(GO) run ./cmd/mepipe-bench

# Self-contained HTML report with embedded timelines.
report:
	$(GO) run ./cmd/mepipe-report -o report.html

# The Figs 2-7 schedule gallery.
figures:
	$(GO) run ./cmd/mepipe-figures > docs/SCHEDULES.md

# The paper's artifact workflow (E0/E1/E2).
artifact:
	cd artifact && sh e0_run.sh && sh e1_run.sh && sh e2_run.sh

clean:
	rm -f report.html artifact/results/*.txt
