# MEPipe reproduction — common workflows.

GO ?= go

.PHONY: all build test vet race-hot race bench report figures artifact check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-sensitive packages (goroutine runtime, shared trace
# sinks) under the race detector — fast enough for every commit.
race-hot:
	$(GO) test -race ./internal/pipeline/... ./internal/obs/...

race:
	$(GO) test -race ./internal/...

# The default pre-commit gate.
check: build vet test race-hot

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper table/figure as text.
eval:
	$(GO) run ./cmd/mepipe-bench

# Self-contained HTML report with embedded timelines.
report:
	$(GO) run ./cmd/mepipe-report -o report.html

# The Figs 2-7 schedule gallery.
figures:
	$(GO) run ./cmd/mepipe-figures > docs/SCHEDULES.md

# The paper's artifact workflow (E0/E1/E2).
artifact:
	cd artifact && sh e0_run.sh && sh e1_run.sh && sh e2_run.sh

clean:
	rm -f report.html artifact/results/*.txt
