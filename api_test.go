package mepipe_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"mepipe"
)

func svpp(t *testing.T) *mepipe.Schedule {
	t.Helper()
	s, err := mepipe.NewSVPP(mepipe.SVPPOptions{P: 4, V: 1, S: 2, N: 4, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSimulateWithTrace: the context-aware entry point simulates and
// traces, and attaching a trace does not perturb the result.
func TestSimulateWithTrace(t *testing.T) {
	s := svpp(t)
	rec := mepipe.NewRecorder()
	res, err := mepipe.Simulate(context.Background(), s, mepipe.UnitCosts(), mepipe.WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("WithTrace recorded no events")
	}
	plain, err := mepipe.Simulate(context.Background(), s, mepipe.UnitCosts())
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime != plain.IterTime || res.BubbleRatio != plain.BubbleRatio {
		t.Errorf("traced Simulate (%g, %g) != untraced (%g, %g)",
			res.IterTime, res.BubbleRatio, plain.IterTime, plain.BubbleRatio)
	}

	snap := rec.Trace().Snapshot()
	if snap.Makespan <= 0 || len(snap.Stages) != 4 {
		t.Errorf("snapshot makespan %g over %d stages", snap.Makespan, len(snap.Stages))
	}
}

func TestSimulateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mepipe.Simulate(ctx, svpp(t), mepipe.UnitCosts())
	if !errors.Is(err, mepipe.ErrCancelled) {
		t.Fatalf("Simulate = %v, want ErrCancelled", err)
	}
}

func TestSearchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mepipe.Search(ctx, mepipe.MEPipe, mepipe.Llama13B(), mepipe.RTX4090Cluster(8),
		mepipe.Training{GlobalBatch: 64, MicroBatch: 1}, mepipe.DefaultSpace())
	if !errors.Is(err, mepipe.ErrCancelled) {
		t.Fatalf("Search = %v, want ErrCancelled", err)
	}
}

func TestEvaluateSentinels(t *testing.T) {
	m := mepipe.Llama13B()
	cl := mepipe.RTX4090Cluster(8)
	tr := mepipe.Training{GlobalBatch: 64, MicroBatch: 1}
	_, err := mepipe.Evaluate(context.Background(), mepipe.DAPPLE, m, cl,
		mepipe.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}, tr)
	if !errors.Is(err, mepipe.ErrIncompatible) {
		t.Errorf("Evaluate with slices under DAPPLE: %v, want ErrIncompatible", err)
	}
}

// TestExporterUnification: every output format flows through the single
// Exporter interface.
func TestExporterUnification(t *testing.T) {
	res, err := mepipe.Simulate(context.Background(), svpp(t), mepipe.UnitCosts())
	if err != nil {
		t.Fatal(err)
	}

	var ascii bytes.Buffer
	if err := mepipe.Export(&ascii, mepipe.ASCIITimeline{}, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "stage") {
		t.Error("ASCII output empty")
	}

	var svg bytes.Buffer
	if err := mepipe.Export(&svg, mepipe.SVGTimeline{}, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("SVG output empty")
	}

	var chrome bytes.Buffer
	if err := mepipe.Export(&chrome, mepipe.ChromeTrace{}, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("Chrome export empty")
	}

	var jsonl bytes.Buffer
	if err := mepipe.Export(&jsonl, mepipe.JSONLTrace{}, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(jsonl.String(), "\n"); lines != len(doc.TraceEvents) {
		t.Errorf("JSONL lines %d != Chrome events %d for an op-only trace", lines, len(doc.TraceEvents))
	}
}

// TestSearchFindsOptimum: the search entry point finds the paper's
// optimum on a pinned slice of the grid.
func TestSearchFindsOptimum(t *testing.T) {
	res, err := mepipe.Search(context.Background(), mepipe.MEPipe, mepipe.Llama13B(),
		mepipe.RTX4090Cluster(8),
		mepipe.Training{GlobalBatch: 64, MicroBatch: 1},
		mepipe.SearchSpace{PP: []int{8}, SPP: []int{4}, MinDP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best() == nil {
		t.Fatal("Search found no feasible candidate")
	}
}
